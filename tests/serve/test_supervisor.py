"""ShardSupervisor: deadlines, retries, quarantine/probe, crash recovery.

Unit-level tests drive a real :class:`ShardPool` under injected
:class:`~repro.faults.serveplan.ServeFaultPlan` fates and assert that
every recovery path returns the exact epoch the clean pool would have
produced (state travels by value, so supervision is trajectory-neutral).
The session-level suite then asserts the acceptance contract: zero-fault
supervised sessions are trajectory-identical to unsupervised ones over
the seeded identity suite.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.faults.serveplan import (
    EpochAbandoned,
    ServeFaultPlan,
)
from repro.serve.health import HealthMonitor
from repro.serve.partition import partition_game
from repro.serve.session import ServeSession
from repro.serve.shard import ShardEngine, UserRecord, build_shard_spec
from repro.serve.supervisor import ShardSupervisor, SupervisorConfig
from repro.serve.workers import ShardPool
from tests.helpers import random_game

#: Zero-fault supervised-vs-unsupervised identity sweep width (the same
#: 34-seed convention as tests/serve/test_identity.py).
N_SEEDS = int(os.environ.get("REPRO_SUPERVISED_IDENTITY_SEEDS", "34"))

#: Tight test-only supervisor: deadline armed after one observation,
#: zero backoff so retries don't slow the suite down.
FAST = SupervisorConfig(
    deadline_floor=0.05,
    min_history=1,
    max_retries=2,
    backoff_base=0.0,
    backoff_cap=0.0,
    probe_every=2,
)

STALL = 0.25


def _one_spec(seed: int):
    game = random_game(
        np.random.default_rng(seed), max_users=12, max_routes=4, max_tasks=14
    )
    part = partition_game(game, 2)
    records = [
        UserRecord(
            user_id=i, routes=game.route_sets[i], weights=game.user_weights[i]
        )
        for i in range(game.num_users)
    ]
    by_shard: dict[int, list[UserRecord]] = {}
    for r in records:
        s = part.owner_shard(r.covered_tasks(), fallback=r.user_id)
        by_shard.setdefault(s, []).append(r)
    shard, recs = sorted(by_shard.items())[0]
    return build_shard_spec(shard, recs, game.tasks, part, game.platform)


def _inline_epoch(spec, state):
    return ShardEngine.from_state(spec, state, scheduler="puu").run_epoch()


def _submit(pool, spec, state):
    return pool.submit_epoch(spec, state, scheduler="puu", sort_key="delta")


# ------------------------------------------------------------------ deadlines
def test_config_validation():
    with pytest.raises(Exception):
        SupervisorConfig(deadline_floor=0.0)
    with pytest.raises(Exception):
        SupervisorConfig(probe_every=0)
    with pytest.raises(Exception):
        SupervisorConfig(min_history=10, history_cap=5)


def test_deadline_needs_history_then_tracks_p95():
    sup = ShardSupervisor(
        pool=None,  # deadline logic only
        config=SupervisorConfig(
            deadline_floor=0.01, min_history=4, deadline_multiplier=10.0
        ),
    )
    for sec in (0.1, 0.1, 0.1):
        sup.observe(sec)
        assert sup.deadline() is None   # history still too thin
    sup.observe(0.2)
    # rank = int(0.95 * 3) = 2 → sorted[2] = 0.1 → × multiplier
    assert sup.deadline() == pytest.approx(0.1 * 10.0)
    wide = ShardSupervisor(
        pool=None,
        config=SupervisorConfig(
            deadline_floor=0.01, min_history=4, deadline_multiplier=10.0,
            history_cap=256,
        ),
    )
    for i in range(1, 101):             # 0.01 .. 1.00
        wide.observe(0.01 * i)
    # rank = int(0.95 * 99) = 94 → sorted[94] = 0.95 → × multiplier
    assert wide.deadline() == pytest.approx(9.5)
    # The floor wins when epochs are fast.
    fast = ShardSupervisor(
        pool=None,
        config=SupervisorConfig(deadline_floor=5.0, min_history=1),
    )
    fast.observe(1e-4)
    assert fast.deadline() == 5.0


# ------------------------------------------------------------ failure kinds
def test_timeout_retry_returns_identical_epoch():
    spec = _one_spec(80)
    engine = ShardEngine(spec, scheduler="puu", rng=np.random.default_rng(1))
    state = engine.export_state()
    expected = _inline_epoch(spec, state)
    faults = ServeFaultPlan(
        seed=0, stalls=((spec.shard_id, 0, STALL),)
    ).compile(2)
    with ShardPool(2, faults=faults) as pool:
        sup = ShardSupervisor(pool, config=FAST)
        sup.observe(1e-3)               # arm the deadline (floor wins)
        result, _ = sup.harvest(_submit(pool, spec, state))
    assert sup.timeouts == 1 and sup.retries == 1
    assert result.moves == expected.moves
    assert result.converged == expected.converged
    assert faults.summary() == {"stall": 1}


def test_worker_crash_rebuilds_pool_and_retries():
    spec = _one_spec(81)
    engine = ShardEngine(spec, scheduler="puu", rng=np.random.default_rng(2))
    state = engine.export_state()
    expected = _inline_epoch(spec, state)
    faults = ServeFaultPlan(
        seed=0, worker_kills=((spec.shard_id, 0),)
    ).compile(2)
    with ShardPool(2, faults=faults) as pool:
        sup = ShardSupervisor(pool, config=FAST)
        result, _ = sup.harvest(_submit(pool, spec, state))
        assert pool.rebuilds >= 1
    assert sup.retries >= 1
    assert result.moves == expected.moves


def test_attach_failure_retries_on_legacy_transport():
    spec = _one_spec(82)
    engine = ShardEngine(spec, scheduler="puu", rng=np.random.default_rng(3))
    state = engine.export_state()
    expected = _inline_epoch(spec, state)
    faults = ServeFaultPlan(
        seed=0, attach_failures=((spec.shard_id, 0),)
    ).compile(2)
    with ShardPool(2, faults=faults) as pool:
        sup = ShardSupervisor(pool, config=FAST)
        result, _ = sup.harvest(_submit(pool, spec, state))
        assert pool.legacy_jobs == 1    # the retry shipped the full spec
    assert sup.retries == 1
    assert result.moves == expected.moves


def test_segment_corruption_republishes_and_retries():
    spec = _one_spec(83)
    engine = ShardEngine(spec, scheduler="puu", rng=np.random.default_rng(4))
    state = engine.export_state()
    expected = _inline_epoch(spec, state)
    faults = ServeFaultPlan(
        seed=0, corruptions=((spec.shard_id, 0),)
    ).compile(2)
    with ShardPool(2, faults=faults) as pool:
        sup = ShardSupervisor(pool, config=FAST)
        result, _ = sup.harvest(_submit(pool, spec, state))
        assert pool.cache_misses == 1   # the republished segment attached
    assert sup.retries == 1
    assert result.moves == expected.moves
    assert faults.summary() == {"corruption": 1}


# ------------------------------------------------------- quarantine lifecycle
def test_quarantine_then_probe_promotes():
    spec = _one_spec(84)
    engine = ShardEngine(spec, scheduler="puu", rng=np.random.default_rng(5))
    state = engine.export_state()
    expected = _inline_epoch(spec, state)
    s = spec.shard_id
    faults = ServeFaultPlan(
        seed=0, stalls=((s, 0, STALL), (s, 1, STALL), (s, 2, STALL))
    ).compile(2)
    monitor = HealthMonitor()
    with ShardPool(2, faults=faults) as pool:
        sup = ShardSupervisor(pool, config=FAST, health=monitor)
        sup.observe(1e-3)
        sup.begin_round(1)
        with pytest.raises(EpochAbandoned):
            sup.harvest(_submit(pool, spec, state))
        assert sup.is_quarantined(s)
        assert sup.quarantines == 1
        assert [a.kind for a in monitor.alerts] == ["shard_quarantined"]
        # The inline fallback replays the identical epoch.
        inline = _inline_epoch(spec, state)
        assert inline.moves == expected.moves
        # Not due yet, then due after probe_every rounds.
        sup.begin_round(2)
        assert not sup.probe_due(s)
        sup.begin_round(3)
        assert sup.probe_due(s)
        time.sleep(2 * STALL)           # let the stalled workers drain
        probe = sup.probe_harvest(_submit(pool, spec, state))
        assert probe is not None
        result, _ = probe
        assert result.moves == expected.moves
    assert not sup.is_quarantined(s)
    assert sup.promotions == 1
    assert [a.kind for a in monitor.alerts] == [
        "shard_quarantined", "shard_promoted",
    ]
    assert sup.report()["quarantined_shards"] == []


def test_failed_probe_rearms_quarantine():
    spec = _one_spec(85)
    engine = ShardEngine(spec, scheduler="puu", rng=np.random.default_rng(6))
    state = engine.export_state()
    s = spec.shard_id
    faults = ServeFaultPlan(
        seed=0,
        stalls=tuple((s, n, STALL) for n in range(4)),  # probe stalls too
    ).compile(2)
    with ShardPool(2, faults=faults) as pool:
        sup = ShardSupervisor(pool, config=FAST)
        sup.observe(1e-3)
        sup.begin_round(1)
        with pytest.raises(EpochAbandoned):
            sup.harvest(_submit(pool, spec, state))
        sup.begin_round(3)
        assert sup.probe_due(s)
        assert sup.probe_harvest(_submit(pool, spec, state)) is None
        assert sup.is_quarantined(s)
        assert not sup.probe_due(s)     # clock re-armed by the failed probe
        sup.begin_round(5)
        assert sup.probe_due(s)
        time.sleep(2 * STALL)
        assert sup.probe_harvest(_submit(pool, spec, state)) is not None
    assert sup.promotions == 1


# ----------------------------------------------- zero-fault trajectory parity
def _trajectory(game, *, supervise: bool, seed: int):
    with ServeSession.from_game(
        game, num_shards=2, scheduler="puu", seed=seed, validate=True,
        processes=2, supervise=supervise,
    ) as sess:
        assert (sess._supervisor is not None) == supervise
        reports = sess.run_to_convergence(max_rounds=200)
        sess.check_quiescence()
        assert sess.ok, [str(v) for v in sess.violations]
        return (
            [(r.epoch_moves, r.boundary_moves, r.slots, r.converged)
             for r in reports],
            sess.counts.copy(),
            sess.global_potential(),
        )


def test_supervised_sessions_match_unsupervised_over_seed_suite():
    """Zero-fault supervision must be invisible: same rounds, same counts,
    same potential, seed by seed (the 34-seed acceptance sweep)."""
    rng = np.random.default_rng(2026)
    for i in range(N_SEEDS):
        game = random_game(rng, max_users=10, max_routes=4, max_tasks=12)
        rounds_a, counts_a, pot_a = _trajectory(game, supervise=True, seed=i)
        rounds_b, counts_b, pot_b = _trajectory(game, supervise=False, seed=i)
        assert rounds_a == rounds_b, f"seed {i}: round trajectories diverge"
        assert np.array_equal(counts_a, counts_b), f"seed {i}"
        assert pot_a == pot_b, f"seed {i}"


def test_supervised_session_reports_clean_run():
    game = random_game(
        np.random.default_rng(99), max_users=14, max_routes=4, max_tasks=16
    )
    with ServeSession.from_game(
        game, num_shards=2, scheduler="puu", seed=7, processes=2
    ) as sess:
        sess.run_to_convergence()
        report = sess.supervision_report()
    assert report is not None
    assert report["timeouts"] == 0
    assert report["retries"] == 0
    assert report["quarantines"] == 0
    assert report["pool_rebuilds"] == 0
    assert report["quarantined_shards"] == []
    assert "injected_faults" not in report   # no plan, no injector
