"""Pipelined epoch dispatch and online re-tiling of a serving session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.churn import synthetic_serve_instance
from repro.serve.health import HealthMonitor, HealthThresholds
from repro.serve.partition import RegionPartition
from repro.serve.session import ServeSession
from tests.helpers import random_game


def _instance(users=300, tasks=80, k=4, seed=11, locality=0.9):
    return synthetic_serve_instance(users, tasks, k, locality=locality, seed=seed)


def _session(k=4, seed=11, **kwargs):
    tasks, platform, records, partition, factory = _instance(k=k, seed=seed)
    sess = ServeSession(
        tasks=tasks, platform=platform, records=records, partition=partition,
        scheduler="puu", seed=seed, validate=True, **kwargs,
    )
    return sess, factory, records


class TestPipeline:
    def test_pipelined_session_reaches_nash(self):
        sess, _, _ = _session(processes=4, pipeline=True)
        with sess:
            sess.run_to_convergence(max_rounds=500)
            assert sess.is_nash()
            sess.raise_if_violations()
            # Every prefetched epoch was either harvested or banked.
            assert not sess._inflight
            assert not sess._banked

    def test_pipeline_actually_prefetches(self):
        """On a local-enough instance some shard must qualify as clean."""
        tasks, platform, records, partition, _ = synthetic_serve_instance(
            600, 160, 8, locality=0.97, seed=11
        )
        with ServeSession(
            tasks=tasks, platform=platform, records=records,
            partition=partition, scheduler="puu", seed=11, validate=True,
            processes=4, pipeline=True,
        ) as sess:
            reports = sess.run_to_convergence(max_rounds=500)
            assert sess.stats.prefetched_epochs > 0
            assert sum(r.prefetched for r in reports) == sess.stats.prefetched_epochs
            assert sess.is_nash()
            sess.raise_if_violations()

    def test_pipeline_matches_plain_equilibrium_quality(self):
        """Pipelining changes scheduling, not the fixed-point property."""
        sess_a, _, _ = _session(processes=4, pipeline=True)
        sess_b, _, _ = _session(processes=4, pipeline=False)
        with sess_a, sess_b:
            sess_a.run_to_convergence(max_rounds=500)
            sess_b.run_to_convergence(max_rounds=500)
            assert sess_a.is_nash() and sess_b.is_nash()
            sess_a.raise_if_violations()
            sess_b.raise_if_violations()

    def test_churn_flushes_inflight_and_banks_results(self):
        sess, factory, records = _session(processes=4, pipeline=True)
        with sess:
            sess.run_round()
            sess.run_round()
            sess.join(factory(sess.next_user_id()))
            assert not sess._inflight  # structural change drained the pipe
            sess.leave(records[0].user_id)
            sess.run_to_convergence(max_rounds=500)
            assert sess.is_nash()
            sess.raise_if_violations()
            assert not sess._banked

    def test_pipeline_requires_pool(self):
        """pipeline=True without a pool (K=1 or inline) is a silent no-op."""
        game = random_game(np.random.default_rng(5), max_users=10, max_tasks=12)
        with ServeSession.from_game(
            game, num_shards=1, seed=0, pipeline=True
        ) as sess:
            assert sess.pipeline is False
            sess.run_to_convergence()

    def test_crashed_inflight_shard_discards_future(self):
        sess, _, _ = _session(processes=4, pipeline=True)
        with sess:
            sess.run_round()
            rep = sess.run_round(crash_shards=(0, 1))
            assert rep.crashed_shards == (0, 1)
            sess.run_to_convergence(max_rounds=500)
            assert sess.is_nash()
            sess.raise_if_violations()


class TestRetile:
    def _skewed_session(self, seed=11):
        """A session built on a deliberately unbalanced region map.

        Reassigns 60% of the tasks to region 0 (keeping the rest of the
        refined map): every shard still owns users, but shard 0 carries
        well over the imbalance thresholds used below, and
        ``refine_regions`` has real cut-reducing moves available.
        """
        tasks, platform, records, partition, factory = _instance(seed=seed)
        n = partition.num_tasks
        k = partition.num_shards
        skew = partition.task_region.copy()
        order = np.argsort(skew, kind="stable")
        skew[order[: int(0.6 * n)]] = 0
        sess = ServeSession(
            tasks=tasks, platform=platform, records=records,
            partition=RegionPartition(num_shards=k, task_region=skew),
            scheduler="puu", seed=seed, validate=True,
        )
        return sess, factory

    def test_retile_preserves_potential_and_strategies(self):
        sess, _ = self._skewed_session()
        with sess:
            sess.run_to_convergence(max_rounds=500)
            pot_before = sess.global_potential()
            game, profile_before = sess.global_profile()
            changed = sess.retile()
            assert changed, "skewed partition should admit a refinement"
            assert sess.stats.retiles == 1
            sess.raise_if_violations()
            # Strategies ride along with their users across the re-tile.
            _, profile_after = sess.global_profile()
            np.testing.assert_array_equal(
                profile_before.choices, profile_after.choices
            )
            assert np.isclose(
                pot_before, sess.global_potential(), rtol=1e-9
            )

    def test_retile_noop_when_already_refined(self):
        sess, _, _ = _session()
        with sess:
            sess.run_round()
            assert sess.retile() is False
            assert sess.stats.retiles == 0

    def test_auto_retile_fires_on_imbalance_alert(self):
        monitor = HealthMonitor(
            thresholds=HealthThresholds(load_imbalance=1.2)
        )
        sess, _ = self._skewed_session()
        sess.health = monitor
        sess.auto_retile = True
        sess._retile_cooldown = 2
        with sess:
            sess.run_to_convergence(max_rounds=500)
            assert any(a.kind == "load_imbalance" for a in monitor.alerts)
            assert sess.stats.retiles >= 1
            assert sess.is_nash()
            sess.raise_if_violations()

    def test_auto_retile_respects_cooldown(self):
        monitor = HealthMonitor(
            thresholds=HealthThresholds(load_imbalance=1.01)
        )
        sess, _ = self._skewed_session()
        sess.health = monitor
        sess.auto_retile = True
        sess._retile_cooldown = 1000  # effectively one retile max
        with sess:
            sess.run_to_convergence(max_rounds=500)
            assert sess.stats.retiles <= 1
            sess.raise_if_violations()

    def test_retile_converges_after_churn(self):
        sess, factory = self._skewed_session()
        with sess:
            sess.run_round()
            sess.join(factory(sess.next_user_id()))
            sess.retile()
            sess.run_to_convergence(max_rounds=500)
            assert sess.is_nash()
            sess.raise_if_violations()
