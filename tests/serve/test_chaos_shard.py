"""Chaos hook: shard-worker crashes must not cost global Nash."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.chaos import ChaosRunner, ShardCrashCase
from tests.helpers import random_game


@pytest.mark.parametrize("scheduler", ["suu", "puu"])
def test_single_shard_crash_still_reaches_nash(scheduler):
    for seed in range(4):
        game = random_game(
            np.random.default_rng(seed + 500), max_users=14, max_routes=4,
            max_tasks=16,
        )
        runner = ChaosRunner(game)
        result = runner.run_shard_case(
            ShardCrashCase(
                name="one-shard-crash",
                num_shards=3,
                crash_shards=(1,),
                crash_round=0,
                scheduler=scheduler,
                seed=seed,
            )
        )
        assert result.ok, result.describe()
        assert result.converged and result.is_nash
        assert not result.violations


def test_multi_shard_crash_still_reaches_nash():
    game = random_game(np.random.default_rng(77), max_users=16, max_tasks=18)
    runner = ChaosRunner(game)
    result = runner.run_shard_case(
        ShardCrashCase(
            name="two-shards-crash",
            num_shards=4,
            crash_shards=(0, 2),
            crash_round=1,
            scheduler="puu",
            seed=3,
        )
    )
    assert result.ok, result.describe()


def test_pooled_pipelined_crash_reaches_nash_without_shm_leak():
    """Crash an in-flight shard under the zero-copy pool: Nash, no leaks.

    The case's leak check asserts that every shared-memory spec segment
    the session published is gone from the OS after close — the
    crashed-shard path must drain its prefetched future rather than
    abandon it.
    """
    game = random_game(np.random.default_rng(79), max_users=18, max_tasks=20)
    runner = ChaosRunner(game)
    result = runner.run_shard_case(
        ShardCrashCase(
            name="pooled-crash",
            num_shards=4,
            crash_shards=(1, 3),
            crash_round=1,
            scheduler="puu",
            seed=5,
            processes=2,
            pipeline=True,
        )
    )
    assert result.ok, result.describe()
    assert not any(v.invariant == "shm_leak" for v in result.violations)


def test_describe_mentions_crash_details():
    game = random_game(np.random.default_rng(78), max_users=8, max_tasks=10)
    result = ChaosRunner(game).run_shard_case(
        ShardCrashCase(
            name="probe", num_shards=2, crash_shards=(0,), seed=0
        )
    )
    text = result.describe()
    assert "probe" in text and "K=2" in text and "[0]" in text
