"""Shard specs + engine: eligibility split, ext counts, snapshot/resume."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.game import RouteNavigationGame
from repro.serve.partition import RegionPartition, partition_game
from repro.serve.shard import ShardEngine, UserRecord, build_shard_spec
from repro.serve.session import ServeSession
from tests.helpers import random_game


def _records(game: RouteNavigationGame) -> list[UserRecord]:
    return [
        UserRecord(
            user_id=i, routes=game.route_sets[i], weights=game.user_weights[i]
        )
        for i in range(game.num_users)
    ]


def test_user_record_requires_routes():
    game = random_game(np.random.default_rng(0), max_users=3)
    with pytest.raises(Exception, match="no candidate routes"):
        UserRecord(user_id=0, routes=(), weights=game.user_weights[0])


def test_covered_tasks_cached_and_sorted():
    game = random_game(np.random.default_rng(1), max_users=5, max_tasks=8)
    rec = _records(game)[0]
    cov = rec.covered_tasks()
    assert np.all(np.diff(cov) > 0) or cov.size <= 1
    assert rec.covered_tasks() is cov  # computed once at construction


def test_full_visibility_spec_reuses_global_objects():
    game = random_game(np.random.default_rng(2), max_users=6, max_tasks=10)
    part = partition_game(game, 2)
    recs = _records(game)
    spec = build_shard_spec(0, recs, game.tasks, part, game.platform)
    assert spec.game.tasks is game.tasks
    assert np.array_equal(spec.task_map, np.arange(game.num_tasks))
    assert spec.own_mask.sum() == part.region_tasks(0).size


def test_compact_spec_remaps_routes():
    game = random_game(np.random.default_rng(3), max_users=8, max_tasks=12)
    part = partition_game(game, 3)
    recs = [r for r in _records(game)]
    own = [r for r in recs if part.owner_shard(r.covered_tasks(), fallback=r.user_id) == 0]
    if not own:
        own = recs[:1]
    spec = build_shard_spec(
        0, own, game.tasks, part, game.platform, compact=True
    )
    # Local ids are dense and map back to the right global tasks.
    assert np.all(np.diff(spec.task_map) > 0) or spec.task_map.size <= 1
    for li, rec in enumerate(sorted(own, key=lambda r: r.user_id)):
        for lr, gr in zip(spec.game.route_sets[li], rec.routes):
            assert [int(spec.task_map[t]) for t in lr.task_ids] == list(gr.task_ids)


def test_engine_defers_boundary_crossing_user():
    """A user whose every candidate route crosses the boundary never moves
    inside a parallel epoch — it is always deferred to the boundary pass."""
    game = RouteNavigationGame.from_coverage(
        # User 0's routes all touch both task 0 (region 0) and task 1
        # (region 1); users 1/2 are single-region fillers.
        [[[0, 1], [0, 1]], [[0]], [[1]]],
        base_rewards=[15.0, 12.0],
        reward_increments=[0.5, 0.5],
    )
    part = RegionPartition(
        num_shards=2, task_region=np.array([0, 1], dtype=np.intp)
    )
    recs = _records(game)
    spec = build_shard_spec(0, [recs[0], recs[1]], game.tasks, part, game.platform)
    eng = ShardEngine(spec, scheduler="suu", rng=np.random.default_rng(0))
    result = eng.run_epoch()
    moved = {u for u, *_ in result.moves}
    assert 0 not in moved  # the cross-boundary user never moves in-epoch
    # If it had an improving cross-region response, it was reported.
    for u in result.boundary_users:
        assert u == 0
    # The session-level boundary pass still gets everyone to Nash.
    sess = ServeSession.from_game(
        game, num_shards=2, partition=part, seed=0, validate=True
    )
    sess.run_to_convergence()
    sess.check_quiescence()
    assert sess.is_nash() and sess.ok


def test_apply_external_folds_counts():
    game = random_game(np.random.default_rng(5), max_users=6, max_tasks=8)
    part = partition_game(game, 2)
    recs = _records(game)
    spec = build_shard_spec(0, recs, game.tasks, part, game.platform)
    eng = ShardEngine(spec, scheduler="suu", rng=np.random.default_rng(1))
    before = eng.profile.counts.copy()
    local = eng.local_counts().copy()
    t = np.array([0], dtype=np.intp)
    eng.apply_external(t, np.array([2], dtype=np.intp))
    assert eng.profile.counts[0] == before[0] + 2
    assert eng.ext[0] == 2
    # Local contribution is unchanged by foreign counts.
    np.testing.assert_array_equal(eng.local_counts(), local)


def test_snapshot_roundtrip_resumes_identically():
    """export_state -> pickle -> from_state reproduces the exact trajectory."""
    for seed in range(6):
        game = random_game(
            np.random.default_rng(seed + 40), max_users=10, max_routes=4, max_tasks=12
        )
        part = partition_game(game, 1)
        recs = _records(game)
        spec = build_shard_spec(0, recs, game.tasks, part, game.platform)
        for sched in ("suu", "puu"):
            a = ShardEngine(spec, scheduler=sched, rng=np.random.default_rng(seed))
            a.run_epoch(max_slots=3)
            state = pickle.loads(pickle.dumps(a.export_state()))
            b = ShardEngine.from_state(spec, state, scheduler=sched)
            ra = a.run_epoch()
            rb = b.run_epoch()
            assert ra.moves == rb.moves
            assert np.array_equal(a.profile.choices, b.profile.choices)


def test_spec_is_picklable():
    game = random_game(np.random.default_rng(9), max_users=6, max_tasks=8)
    part = partition_game(game, 2)
    spec = build_shard_spec(0, _records(game), game.tasks, part, game.platform)
    clone = pickle.loads(pickle.dumps(spec))
    assert clone.shard_id == spec.shard_id
    assert np.array_equal(clone.users, spec.users)
    assert np.array_equal(clone.task_map, spec.task_map)


def test_shard_potential_matches_monolithic_for_k1():
    from repro.core.potential import potential

    game = random_game(np.random.default_rng(11), max_users=8, max_tasks=10)
    part = partition_game(game, 1)
    spec = build_shard_spec(0, _records(game), game.tasks, part, game.platform)
    eng = ShardEngine(spec, scheduler="suu", rng=np.random.default_rng(2))
    assert eng.shard_potential() == potential(eng.profile)
