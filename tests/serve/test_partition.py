"""Partitioner: tiling, refinement, owner routing, and the edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.partition import (
    RegionPartition,
    cut_size,
    partition_game,
    refine_regions,
    tile_tasks,
)
from tests.helpers import random_game


def test_tile_tasks_balanced():
    rng = np.random.default_rng(0)
    xy = rng.uniform(0, 10, size=(40, 2))
    region = tile_tasks(xy, 4)
    sizes = np.bincount(region, minlength=4)
    assert region.shape == (40,)
    assert region.min() >= 0 and region.max() < 4
    assert sizes.min() >= 8  # balanced median splits: 40/4 +- rounding


def test_tile_tasks_all_same_point():
    """Coincident coordinates degrade to a balanced index split."""
    xy = np.zeros((12, 2))
    region = tile_tasks(xy, 3)
    sizes = np.bincount(region, minlength=3)
    assert sizes.tolist() == [4, 4, 4]


def test_tile_tasks_fewer_points_than_regions():
    xy = np.array([[0.0, 0.0], [1.0, 1.0]])
    region = tile_tasks(xy, 5)
    assert region.size == 2
    assert region.min() >= 0 and region.max() < 5
    # The two points land in distinct regions.
    assert region[0] != region[1]


def test_tile_tasks_empty():
    assert tile_tasks(np.zeros((0, 2)), 3).size == 0


def test_partition_k1_trivial():
    game = random_game(np.random.default_rng(1), max_users=8, max_tasks=10)
    part = partition_game(game, 1)
    assert part.num_shards == 1
    assert np.array_equal(part.task_region, np.zeros(game.num_tasks, dtype=np.intp))
    assert cut_size(game, part.task_region) == 0


def test_refinement_never_increases_cut():
    for seed in range(10):
        game = random_game(
            np.random.default_rng(seed), max_users=12, max_routes=4, max_tasks=14
        )
        k = 3
        tiled = tile_tasks(game.tasks.xy, k)
        refined = refine_regions(game, tiled, k)
        assert cut_size(game, refined) <= cut_size(game, tiled)
        # Refinement returns a new array; the input is untouched.
        assert refined is not tiled


def test_refinement_respects_balance_cap():
    game = random_game(np.random.default_rng(3), max_users=12, max_tasks=12)
    k = 2
    part = partition_game(game, k, balance_factor=1.5)
    sizes = part.region_sizes()
    cap = int(np.ceil(1.5 * game.num_tasks / k))
    assert sizes.max() <= cap


def test_owner_shard_majority_and_ties():
    part = RegionPartition(
        num_shards=2, task_region=np.array([0, 0, 1, 1, 1], dtype=np.intp)
    )
    assert part.owner_shard(np.array([2, 3, 0])) == 1
    # Tie (one task each side) -> lowest region id.
    assert part.owner_shard(np.array([0, 2])) == 0
    # Duplicate coverage does not double-vote.
    assert part.owner_shard(np.array([0, 2, 2])) == 0
    # Empty coverage -> fallback mod K.
    assert part.owner_shard(np.array([], dtype=np.intp), fallback=5) == 1


def test_region_partition_validates():
    with pytest.raises(Exception):
        RegionPartition(num_shards=2, task_region=np.array([0, 2], dtype=np.intp))
    with pytest.raises(Exception):
        RegionPartition(num_shards=0, task_region=np.zeros(3, dtype=np.intp))


def test_more_shards_than_occupied_regions():
    """K larger than the number of tasks leaves dormant regions, legally."""
    game = random_game(np.random.default_rng(7), max_users=4, max_tasks=3)
    k = 8
    part = partition_game(game, k)
    assert part.num_shards == k
    assert part.region_sizes().sum() == game.num_tasks
    # Some regions must be empty; they are simply never owned.
    assert (part.region_sizes() == 0).any()
