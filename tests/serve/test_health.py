"""Tests for the serving-layer HealthMonitor: threshold alerts, the
Nash-residual envelope, potential watch, and the report schema."""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.serve.churn import ChurnSchedule, synthetic_serve_instance
from repro.serve.health import (
    HEALTH_SCHEMA,
    Alert,
    HealthMonitor,
    HealthThresholds,
    validate_health_report,
)
from repro.serve.session import ServeSession
from tests.helpers import random_game


def _session(seed: int = 21, k: int = 2, **kwargs) -> ServeSession:
    game = random_game(
        np.random.default_rng(seed), max_users=14, max_routes=4, max_tasks=16
    )
    return ServeSession.from_game(game, num_shards=k, seed=seed, **kwargs)


class TestThresholds:
    def test_defaults_valid(self):
        HealthThresholds()

    def test_rejects_nonpositive_ratio(self):
        with pytest.raises(ValueError):
            HealthThresholds(load_imbalance=0.0)
        with pytest.raises(ValueError):
            HealthThresholds(straggler_ratio=-1.0)

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            HealthThresholds(potential_drop_tol=-1e-9)

    def test_none_disables_check(self):
        monitor = HealthMonitor(HealthThresholds(
            load_imbalance=None, boundary_fraction=None,
            churn_backlog=None, straggler_ratio=None,
        ))
        sess = _session(health=None)
        monitor.on_round(sess, [], sess.run_round())
        kinds = {a.kind for a in monitor.alerts}
        assert "load_imbalance" not in kinds
        assert "churn_backlog" not in kinds


class TestAlerts:
    def test_tight_thresholds_fire(self):
        # Any real multi-shard round violates near-zero trigger levels
        # (max/median epoch seconds is >= 1 by construction).
        monitor = HealthMonitor(HealthThresholds(
            straggler_ratio=1.0 - 1e-9,
        ))
        tasks, platform, records, partition, _ = (
            synthetic_serve_instance(40, 24, 2, seed=22))
        with ServeSession(
            tasks=tasks, platform=platform, records=records,
            partition=partition, seed=22, health=monitor,
        ) as sess:
            sess.run_to_convergence()
        kinds = {a.kind for a in monitor.alerts}
        assert "epoch_straggler" in kinds
        assert not monitor.healthy

    def test_churn_backlog_fires_and_resets(self):
        monitor = HealthMonitor(HealthThresholds(churn_backlog=0))
        tasks, platform, records, partition, factory = (
            synthetic_serve_instance(30, 20, 2, seed=7))
        with ServeSession(
            tasks=tasks, platform=platform, records=records,
            partition=partition, seed=7, health=monitor,
        ) as sess:
            sess.join(factory(sess.next_user_id()))
            sess.run_round()
            assert any(a.kind == "churn_backlog" for a in monitor.alerts)
            sess.run_to_convergence()
            # Converged round resets the backlog window.
            assert monitor.report(sess)["churn_backlog"] == 0

    def test_alert_counter_and_structure(self):
        monitor = HealthMonitor(HealthThresholds(load_imbalance=1e-6))
        with obs.session():
            sess = _session(seed=23, health=monitor)
            sess.run_round()
            snap = obs.REGISTRY.snapshot()
            counts = snap.counter_values("health.alerts_total", "kind")
            assert counts.get("load_imbalance", 0) >= 1
        alert = monitor.alerts[0]
        assert isinstance(alert, Alert)
        doc = alert.as_dict()
        assert set(doc) == {"kind", "round", "value", "threshold", "message"}

    def test_healthy_session_no_alerts(self):
        # Generous thresholds: a small quiet session stays healthy.
        monitor = HealthMonitor(HealthThresholds(
            load_imbalance=100.0, boundary_fraction=None,
            churn_backlog=1000, straggler_ratio=None,
        ))
        sess = _session(seed=24, health=monitor)
        sess.run_to_convergence()
        assert monitor.healthy
        assert monitor.report(sess)["healthy"]


class TestResidualAndPotential:
    def test_envelope_non_increasing_ends_at_zero(self):
        monitor = HealthMonitor()
        sess = _session(seed=25, health=monitor)
        sess.run_to_convergence()
        assert sess.is_nash()
        env = [v for _, v in monitor.nash_residual_envelope()]
        assert env, "residual must be sampled"
        assert all(b <= a for a, b in zip(env, env[1:]))
        assert env[-1] == 0.0

    def test_residual_thinning_still_samples_converged_round(self):
        monitor = HealthMonitor(residual_every=1000)
        sess = _session(seed=26, health=monitor)
        sess.run_to_convergence()
        series = monitor.nash_residual_series()
        assert series and series[-1][1] == 0.0

    def test_residual_every_validated(self):
        with pytest.raises(ValueError):
            HealthMonitor(residual_every=0)

    def test_potential_monotone_without_churn(self):
        monitor = HealthMonitor()
        sess = _session(seed=27, health=monitor)
        sess.run_to_convergence()
        doc = monitor.report(sess)["potential"]
        assert doc["monotonic"]
        assert doc["violations"] == 0
        values = [v for _, v in doc["series"]]
        assert values == sorted(values)

    def test_sharded_potential_matches_global(self):
        sess = _session(seed=28, k=3)
        sess.run_to_convergence()
        assert sess.sharded_potential() == pytest.approx(
            sess.global_potential(), rel=1e-9
        )

    def test_nash_residual_zero_at_equilibrium(self):
        sess = _session(seed=29, k=3)
        sess.run_to_convergence()
        assert sess.is_nash()
        assert sess.nash_residual() == 0.0


class TestEndToEndChurnK4:
    def test_health_report_k4(self):
        """Acceptance: K=4 churn session yields a valid health report."""
        monitor = HealthMonitor()
        tasks, platform, records, partition, factory = (
            synthetic_serve_instance(120, 50, 4, seed=31))
        churn = ChurnSchedule(rate=3.0, seed=32)
        with obs.session(), ServeSession(
            tasks=tasks, platform=platform, records=records,
            partition=partition, seed=31, validate=True, health=monitor,
        ) as sess:
            for _ in range(6):
                joins, leaves = churn.next_round(sorted(sess.records))
                for uid in leaves:
                    sess.leave(uid)
                for _ in range(joins):
                    sess.join(factory(sess.next_user_id()))
                sess.run_round()
            sess.run_to_convergence()
            sess.check_quiescence()
            report = validate_health_report(monitor.report(sess))

            assert report["schema"] == HEALTH_SCHEMA
            assert report["shards"] == 4
            assert len(report["per_shard"]) == 4
            for row in report["per_shard"].values():
                assert "users" in row and "epoch_seconds" in row
            assert report["load_imbalance"] >= 1.0
            assert 0.0 <= report["boundary_fraction"] <= 1.0
            env = [v for _, v in report["nash_residual"]["envelope"]]
            assert all(b <= a for a, b in zip(env, env[1:]))
            assert report["nash_residual"]["final"] == 0.0
            assert report["nash_residual"]["at_equilibrium"]
            # Residual/potential curves landed in the time series too.
            assert obs.TIMESERIES.get("serve.nash_residual")
            assert obs.TIMESERIES.get("serve.potential")


class TestValidateReport:
    def _valid(self) -> dict:
        monitor = HealthMonitor()
        sess = _session(seed=33, health=monitor)
        sess.run_to_convergence()
        return monitor.report(sess)

    def test_round_trips(self):
        report = self._valid()
        assert validate_health_report(report) is report

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="must be a dict"):
            validate_health_report([])

    def test_rejects_wrong_schema(self):
        report = self._valid()
        report["schema"] = "something/v0"
        with pytest.raises(ValueError, match="schema"):
            validate_health_report(report)

    def test_rejects_missing_field(self):
        report = self._valid()
        del report["per_shard"]
        with pytest.raises(ValueError, match="missing fields"):
            validate_health_report(report)

    def test_rejects_wrong_type(self):
        report = self._valid()
        report["alerts"] = "none"
        with pytest.raises(ValueError, match="alerts"):
            validate_health_report(report)

    def test_rejects_increasing_envelope(self):
        report = self._valid()
        report["nash_residual"]["envelope"] = [[0, 0.0], [1, 2.0]]
        with pytest.raises(ValueError, match="non-increasing"):
            validate_health_report(report)

    def test_rejects_malformed_alert(self):
        report = self._valid()
        report["alerts"] = [{"kind": "x"}]
        with pytest.raises(ValueError, match="malformed alert"):
            validate_health_report(report)
