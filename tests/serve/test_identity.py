"""K=1 serving is bit-for-bit the monolithic allocator trajectory.

The contract that anchors the serving layer to the paper's algorithms:
a single-shard :class:`~repro.serve.ServeSession` consumes its RNG and
runs its kernels in exactly the order of ``Allocator.run`` (DGRN for SUU,
MUUN for PUU), so the potential history is *bitwise* equal, profits agree
to <= 1e-12, and the final strategy profile is identical — over the same
34-seed suite as the distributed protocol's zero-fault identity test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import RunConfig
from repro.algorithms.dgrn import DGRN
from repro.algorithms.muun import MUUN
from repro.core.profit import all_profits
from repro.serve.session import ServeSession
from tests.helpers import random_game

N_SEEDS = 34

_ALLOCATORS = {"suu": DGRN, "puu": MUUN}


@pytest.mark.parametrize("scheduler", ["suu", "puu"])
def test_k1_serving_identical_to_monolithic(scheduler):
    mismatches = []
    for seed in range(N_SEEDS):
        game = random_game(
            np.random.default_rng(seed), max_users=10, max_routes=4, max_tasks=12
        )
        sess = ServeSession.from_game(
            game,
            num_shards=1,
            scheduler=scheduler,
            seed=seed,
            record_history=True,
            validate=True,
        )
        sess.run_to_convergence()
        sess.check_quiescence()
        res = _ALLOCATORS[scheduler](
            seed=seed, config=RunConfig(record_history=True)
        ).run(game)
        hist = sess.history()
        _, profile = sess.global_profile()
        pot_ok = np.array_equal(
            hist["potential_history"], res.potential_history
        )
        choices_ok = np.array_equal(profile.choices, res.profile.choices)
        profit_drift = float(
            np.abs(all_profits(profile) - all_profits(res.profile)).max()
        )
        if not (pot_ok and choices_ok and profit_drift <= 1e-12 and sess.ok):
            mismatches.append(
                (seed, pot_ok, choices_ok, profit_drift, len(sess.violations))
            )
    assert not mismatches, (
        f"{len(mismatches)}/{N_SEEDS} seeds diverged from the monolithic "
        f"{scheduler} trajectory: {mismatches[:5]}"
    )


@pytest.mark.parametrize("scheduler", ["suu", "puu"])
def test_k1_total_slots_match(scheduler):
    for seed in (0, 7, 21):
        game = random_game(
            np.random.default_rng(seed), max_users=10, max_routes=4, max_tasks=12
        )
        sess = ServeSession.from_game(
            game, num_shards=1, scheduler=scheduler, seed=seed
        )
        sess.run_to_convergence()
        res = _ALLOCATORS[scheduler](seed=seed).run(game)
        engine = sess.engines[0]
        assert engine is not None
        # The serving epoch spends one extra probe slot confirming
        # quiescence; decision slots up to convergence coincide.
        assert engine.total_slots == res.decision_slots
