"""Spec-transport failure modes: attach cleanup, degradation, stale tickets.

Covers the serving-layer transport satellites: the ``load_spec``
close-on-failure contract (no leaked attachments or segments), the
observable shm → pickle degradation path, degraded-transport trajectory
parity + accounting, and the documented ``ticket_for`` version-bump
invariant (stale segment unlinked, live worker mappings survive until
cache eviction).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.core.shm import SharedBlock, os_segments
from repro.faults.serveplan import (
    ServeFaultPlan,
    SpecAttachError,
    SpecIntegrityError,
)
from repro.serve.partition import partition_game
from repro.serve.session import ServeSession
from repro.serve.shard import ShardEngine, UserRecord, build_shard_spec
from repro.serve.specstore import SpecTicket, load_spec, publish_spec
from repro.serve.workers import ShardPool, _run_epoch_job
from tests.helpers import random_game


def _one_spec(seed: int, version: int = 0):
    game = random_game(
        np.random.default_rng(seed), max_users=12, max_routes=4, max_tasks=14
    )
    part = partition_game(game, 2)
    records = [
        UserRecord(
            user_id=i, routes=game.route_sets[i], weights=game.user_weights[i]
        )
        for i in range(game.num_users)
    ]
    by_shard: dict[int, list[UserRecord]] = {}
    for r in records:
        s = part.owner_shard(r.covered_tasks(), fallback=r.user_id)
        by_shard.setdefault(s, []).append(r)
    shard, recs = sorted(by_shard.items())[0]
    return build_shard_spec(
        shard, recs, game.tasks, part, game.platform, version=version
    )


def _specs_and_states(seed: int, k: int = 2):
    game = random_game(
        np.random.default_rng(seed), max_users=14, max_routes=4, max_tasks=16
    )
    part = partition_game(game, k)
    records = [
        UserRecord(
            user_id=i, routes=game.route_sets[i], weights=game.user_weights[i]
        )
        for i in range(game.num_users)
    ]
    by_shard: dict[int, list[UserRecord]] = {}
    for r in records:
        s = part.owner_shard(r.covered_tasks(), fallback=r.user_id)
        by_shard.setdefault(s, []).append(r)
    specs, engines = [], []
    for s, recs in sorted(by_shard.items()):
        spec = build_shard_spec(s, recs, game.tasks, part, game.platform)
        specs.append(spec)
        engines.append(
            ShardEngine(spec, scheduler="puu", rng=np.random.default_rng(seed + s))
        )
    return specs, engines


# --------------------------------------------------- load_spec close contract
def test_load_spec_closes_attachment_on_bad_magic(monkeypatch):
    """A mangled header must raise the typed error AND close the mapping."""
    spec = _one_spec(70)
    ticket, owner = publish_spec(spec)
    try:
        owner.buf[:8] = b"\x00" * 8
        attached: list[SharedBlock] = []
        real_attach = SharedBlock.attach.__func__

        def spy(cls, name):
            block = real_attach(cls, name)
            attached.append(block)
            return block

        monkeypatch.setattr(SharedBlock, "attach", classmethod(spy))
        for _ in range(5):
            with pytest.raises(SpecIntegrityError):
                load_spec(ticket)
        assert len(attached) == 5
        assert all(b.closed for b in attached)
    finally:
        owner.close()


def test_load_spec_closes_attachment_on_skeleton_garbage(monkeypatch):
    """Unpicklable skeleton bytes behave like bad magic: typed + closed."""
    spec = _one_spec(71)
    ticket, owner = publish_spec(spec)
    try:
        owner.buf[16:64] = b"\xde\xad\xbe\xef" * 12  # shred the skeleton
        attached: list[SharedBlock] = []
        real_attach = SharedBlock.attach.__func__

        def spy(cls, name):
            block = real_attach(cls, name)
            attached.append(block)
            return block

        monkeypatch.setattr(SharedBlock, "attach", classmethod(spy))
        with pytest.raises(SpecIntegrityError):
            load_spec(ticket)
        assert attached and attached[0].closed
    finally:
        owner.close()


def test_failed_loads_leak_no_segments():
    """Repeated failed loads + owner shutdown leave /dev/shm spotless."""
    before = set(os_segments())
    spec = _one_spec(72)
    ticket, owner = publish_spec(spec)
    owner.buf[:8] = b"\xff" * 8
    for _ in range(10):
        with pytest.raises(SpecIntegrityError):
            load_spec(ticket)
    owner.close()
    assert set(os_segments()) - before == set()


def test_load_spec_missing_segment_is_typed():
    ticket = SpecTicket(shard_id=0, version=0, segment="repro-gone-xyz", nbytes=64)
    with pytest.raises(SpecAttachError):
        load_spec(ticket)


# ------------------------------------------------------ degradation is visible
def test_publish_error_degrades_pool_observably(monkeypatch):
    """A genuine store failure falls back to pickle with event + counter."""
    specs, engines = _specs_and_states(73)
    spec, state = specs[0], engines[0].export_state()
    with obs.session(), ShardPool(1) as pool:
        assert pool._store is not None

        def boom(_spec):
            raise RuntimeError("no shm for you")

        monkeypatch.setattr(pool._store, "ticket_for", boom)
        result, _ = pool.harvest(
            pool.submit_epoch(spec, state, scheduler="puu", sort_key="delta")
        )
        assert result.shard_id == spec.shard_id
        assert pool.degraded          # permanent fallback
        assert pool.legacy_jobs == 1
        snap = obs.REGISTRY.snapshot()
        degraded = snap.counter_values("serve.shm_degraded_total", "reason")
        assert degraded == {"publish_error": 1}


def test_injected_publish_failure_is_transient(tmp_path):
    """A scheduled publish failure pickles one job, then shm resumes."""
    specs, engines = _specs_and_states(74)
    spec, state = specs[0], engines[0].export_state()
    faults = ServeFaultPlan(
        seed=0, publish_failures=((spec.shard_id, spec.version),)
    ).compile(2)
    with obs.session(), ShardPool(1, faults=faults) as pool:
        assert pool._store is not None
        _, state = pool.harvest(
            pool.submit_epoch(spec, state, scheduler="puu", sort_key="delta")
        )
        assert not pool.degraded      # store survives the injected failure
        assert pool.legacy_jobs == 1
        pool.harvest(
            pool.submit_epoch(spec, state, scheduler="puu", sort_key="delta")
        )
        assert pool.cache_misses == 1  # shm transport back on the next epoch
        snap = obs.REGISTRY.snapshot()
        degraded = snap.counter_values("serve.shm_degraded_total", "reason")
        assert degraded == {"publish_failure": 1}
        assert faults.summary() == {"publish_failure": 1}


# ------------------------------------------------- degraded transport parity
def test_degraded_transport_matches_shm_results_and_accounting():
    """use_shm=False jobs: identical epochs, legacy accounting, fat payloads."""
    specs, engines = _specs_and_states(75)
    states = [e.export_state() for e in engines]
    inline = [
        ShardEngine.from_state(spec, st, scheduler="puu").run_epoch()
        for spec, st in zip(specs, states)
    ]
    with obs.session():
        with ShardPool(2, use_shm=False) as pool:
            outcomes = pool.run_epochs(
                specs, states, scheduler="puu", sort_key="delta"
            )
            # Legacy jobs never touch the spec cache: they are counted as
            # legacy traffic, not as cache misses (no segment attach).
            assert pool.cache_hits == 0 and pool.cache_misses == 0
            assert pool.legacy_jobs == len(specs)
            assert pool.spec_bytes_shipped == 0
            payload = pool.payload_bytes
        snap = obs.REGISTRY.snapshot()
        assert snap.counter_values("serve.worker_cache_hits") == {}
        assert snap.counter_values("serve.worker_cache_misses") == {}
        assert snap.counter_values("serve.legacy_jobs_total") == {
            (): len(specs)
        }
        assert snap.counter_values("serve.epoch_payload_bytes") == {(): payload}
    for (res, _), ref in zip(outcomes, inline):
        assert res.shard_id == ref.shard_id
        assert res.moves == ref.moves
        assert res.converged == ref.converged
        assert np.array_equal(res.boundary_users, ref.boundary_users)


def test_degraded_session_trajectory_matches_shm_session():
    game = random_game(
        np.random.default_rng(76), max_users=16, max_routes=4, max_tasks=18
    )

    def run(use_shm: bool) -> float:
        with ServeSession.from_game(
            game, num_shards=2, scheduler="puu", seed=3, validate=True,
            processes=2, use_shm=use_shm,
        ) as sess:
            sess.run_to_convergence()
            sess.check_quiescence()
            assert sess.ok, [str(v) for v in sess.violations]
            if not use_shm:
                assert sess._pool is not None and sess._pool.degraded
            return sess.global_potential()

    assert run(True) == run(False)


# ------------------------------------------------ version bump while in flight
def test_version_bump_unlinks_segment_but_live_mapping_survives():
    """`ticket_for` retires the stale segment immediately; a worker that
    already mapped it keeps serving epochs from its cache until eviction
    (the documented POSIX-unlink invariant)."""
    spec_v0 = _one_spec(77, version=0)
    spec_v1 = _one_spec(77, version=1)
    engine = ShardEngine(
        spec_v0, scheduler="puu", rng=np.random.default_rng(5)
    )
    state = engine.export_state()
    expected = ShardEngine.from_state(
        spec_v0, state, scheduler="puu"
    ).run_epoch()
    with ShardPool(1) as pool:
        assert pool._store is not None
        # Epoch 1 caches the v0 spec (and its mapping) in the one worker.
        pool.harvest(
            pool.submit_epoch(spec_v0, state, scheduler="puu", sort_key="delta")
        )
        stale_ticket = pool._store._live[spec_v0.shard_id][1]
        assert stale_ticket.segment in set(os_segments())
        # Churn bumps the version: the v0 segment is unlinked right away.
        pool._store.ticket_for(spec_v1)
        assert stale_ticket.segment not in set(os_segments())
        # An in-flight epoch still holding the v0 ticket: ship it straight
        # to the worker, bypassing the store (which has moved on to v1).
        fut = pool._pool.submit(
            _run_epoch_job, stale_ticket, state, "puu", "delta", None, False
        )
        result, _, _, cache_hit = fut.result()
        assert cache_hit is True      # served from the surviving mapping
        assert result.moves == expected.moves
        assert result.converged == expected.converged
        # The bump itself evicts on next use: a v1 job misses exactly once.
        eng1 = ShardEngine(
            spec_v1, scheduler="puu", rng=np.random.default_rng(6)
        )
        pool.harvest(
            pool.submit_epoch(
                spec_v1, eng1.export_state(), scheduler="puu", sort_key="delta"
            )
        )
        assert pool.cache_misses == 2  # v0 once + v1 once
