"""Public-API surface tests: every exported name resolves and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.algorithms",
    "repro.core",
    "repro.distributed",
    "repro.experiments",
    "repro.metrics",
    "repro.mobility",
    "repro.network",
    "repro.scenario",
    "repro.tasks",
    "repro.traces",
    "repro.utils",
    "repro.viz",
]


@pytest.mark.parametrize("package", PACKAGES)
class TestPublicSurface:
    def test_all_names_resolve(self, package):
        mod = importlib.import_module(package)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{package}.{name} missing"

    def test_module_docstring(self, package):
        mod = importlib.import_module(package)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 10

    def test_exported_callables_documented(self, package):
        mod = importlib.import_module(package)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if callable(obj) and not isinstance(obj, type):
                assert obj.__doc__, f"{package}.{name} lacks a docstring"


class TestVersion:
    def test_version_matches_pyproject(self):
        import tomllib
        from pathlib import Path

        import repro

        pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        data = tomllib.loads(pyproject.read_text())
        assert repro.__version__ == data["project"]["version"]
