"""Round-trip tests for game serialization."""

import json

import numpy as np
import pytest

from repro.core import StrategyProfile
from repro.core.potential import potential
from repro.core.profit import all_profits
from repro.io import game_from_dict, game_to_dict, load_game, save_game

from tests.helpers import random_game


class TestRoundTrip:
    def test_scenario_game(self, shanghai_game, tmp_path):
        path = tmp_path / "game.json"
        save_game(shanghai_game, path)
        loaded = load_game(path)
        assert loaded.num_users == shanghai_game.num_users
        assert loaded.num_tasks == shanghai_game.num_tasks
        assert loaded.platform == shanghai_game.platform
        assert loaded.detour_unit_km == shanghai_game.detour_unit_km
        for i in shanghai_game.users:
            assert loaded.route_sets[i] == shanghai_game.route_sets[i]
            assert loaded.user_weights[i] == shanghai_game.user_weights[i]

    def test_profits_identical_after_reload(self, shanghai_game, tmp_path):
        path = tmp_path / "game.json"
        save_game(shanghai_game, path)
        loaded = load_game(path)
        choices = StrategyProfile.random(
            shanghai_game, np.random.default_rng(3)
        ).choices
        a = all_profits(StrategyProfile(shanghai_game, choices))
        b = all_profits(StrategyProfile(loaded, choices))
        assert np.allclose(a, b)
        assert potential(StrategyProfile(loaded, choices)) == pytest.approx(
            potential(StrategyProfile(shanghai_game, choices))
        )

    def test_random_games(self, rng, tmp_path):
        for i in range(10):
            g = random_game(rng)
            loaded = game_from_dict(game_to_dict(g))
            assert loaded.num_users == g.num_users
            p_orig = StrategyProfile.random(g, np.random.default_rng(i))
            p_load = StrategyProfile(loaded, p_orig.choices)
            assert np.allclose(all_profits(p_orig), all_profits(p_load))

    def test_json_is_plain_types(self, fig1_game):
        text = json.dumps(game_to_dict(fig1_game))
        assert "task_id" in text

    def test_wrong_version_rejected(self, fig1_game):
        data = game_to_dict(fig1_game)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="format_version"):
            game_from_dict(data)

    def test_dynamics_equivalent_after_reload(self, fig1_game, tmp_path):
        from repro.algorithms import BUAU

        path = tmp_path / "fig1.json"
        save_game(fig1_game, path)
        loaded = load_game(path)
        res = BUAU(seed=0).run(loaded, initial=[1, 0, 1])
        assert list(res.profile.choices) == [0, 0, 0]
        assert res.total_profit == pytest.approx(11.0)
