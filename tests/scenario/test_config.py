"""Tests for repro.scenario.config."""

import pytest

from repro.scenario import ScenarioConfig


class TestValidation:
    def test_defaults_valid(self):
        cfg = ScenarioConfig()
        assert cfg.city == "shanghai"
        assert cfg.route_count_range == (1, 5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_users": 0},
            {"n_tasks": -1},
            {"route_count_range": (0, 5)},
            {"route_count_range": (5, 1)},
            {"coverage_radius_km": 0.0},
            {"base_reward_range": (0.0, 10.0)},
            {"user_weight_range": (0.0, 0.9)},
            {"platform_weight_range": (0.1, 1.0)},
            {"phi": 1.5},
            {"theta": -0.1},
            {"congestion_hotspots": -1},
            {"congestion_scale": 0.0},
            {"route_method": "teleport"},
            {"penalty_factor": 1.0},
            {"detour_unit_km": 0.0},
            {"n_vehicles": 0},
            {"trips_per_vehicle": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioConfig(**kwargs)

    def test_with_updates(self):
        cfg = ScenarioConfig(n_users=10)
        cfg2 = cfg.with_(n_users=20, city="roma")
        assert cfg2.n_users == 20 and cfg2.city == "roma"
        assert cfg.n_users == 10

    def test_with_validates(self):
        with pytest.raises(ValueError):
            ScenarioConfig().with_(n_users=-5)

    def test_fixed_platform_weights(self):
        cfg = ScenarioConfig(phi=0.3, theta=0.7)
        assert cfg.phi == 0.3 and cfg.theta == 0.7
