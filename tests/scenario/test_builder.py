"""Tests for repro.scenario.builder (end-to-end instance construction)."""

import numpy as np
import pytest

from repro.scenario import ScenarioConfig, build_scenario
from repro.traces.cities import get_city
from repro.traces.synthetic import synthesize_traces


class TestBuildScenario:
    def test_sizes_match_config(self, shanghai_scenario):
        sc = shanghai_scenario
        assert sc.num_users == sc.config.n_users
        assert sc.num_tasks == sc.config.n_tasks
        assert len(sc.od_pairs) == sc.config.n_users

    def test_route_counts_in_range(self, shanghai_scenario):
        lo, hi = shanghai_scenario.config.route_count_range
        for i in shanghai_scenario.game.users:
            assert lo <= shanghai_scenario.game.num_routes(i) <= hi

    def test_user_weights_in_table2_range(self, shanghai_scenario):
        for uw in shanghai_scenario.game.user_weights:
            for v in (uw.alpha, uw.beta, uw.gamma):
                assert 0.1 <= v <= 0.9

    def test_platform_weights_in_table2_range(self, shanghai_scenario):
        p = shanghai_scenario.game.platform
        assert 0.1 <= p.phi <= 0.8
        assert 0.1 <= p.theta <= 0.8

    def test_task_rewards_in_table2_range(self, shanghai_scenario):
        t = shanghai_scenario.tasks
        assert np.all(t.base_rewards >= 10.0) and np.all(t.base_rewards <= 20.0)
        assert np.all(t.reward_increments >= 0.0) and np.all(t.reward_increments <= 1.0)

    def test_reproducible(self):
        cfg = ScenarioConfig(city="roma", n_users=8, n_tasks=20, seed=99)
        a = build_scenario(cfg)
        b = build_scenario(cfg)
        assert a.od_pairs == b.od_pairs
        for i in a.game.users:
            assert a.game.route_sets[i] == b.game.route_sets[i]
        assert a.game.user_weights == b.game.user_weights

    def test_different_seeds_differ(self):
        a = build_scenario(ScenarioConfig(n_users=8, n_tasks=20, seed=1))
        b = build_scenario(ScenarioConfig(n_users=8, n_tasks=20, seed=2))
        assert a.od_pairs != b.od_pairs

    @pytest.mark.parametrize("city", ["shanghai", "roma", "epfl"])
    def test_all_cities_build(self, city):
        sc = build_scenario(ScenarioConfig(city=city, n_users=6, n_tasks=15, seed=3))
        assert sc.game.num_users == 6

    def test_fixed_platform_weights_used(self):
        sc = build_scenario(
            ScenarioConfig(n_users=5, n_tasks=10, seed=4, phi=0.25, theta=0.65)
        )
        assert sc.game.platform.phi == 0.25
        assert sc.game.platform.theta == 0.65

    def test_detour_unit_applied(self):
        sc = build_scenario(ScenarioConfig(n_users=5, n_tasks=10, seed=4))
        assert sc.game.detour_unit_km == sc.config.detour_unit_km

    def test_real_traces_can_be_injected(self):
        traces = synthesize_traces(
            get_city("shanghai"), n_vehicles=30, trips_per_vehicle=2, seed=11
        )
        sc = build_scenario(
            ScenarioConfig(n_users=5, n_tasks=10, seed=4), traces=traces
        )
        assert sc.traces is traces

    def test_routes_have_tasks_attached(self, shanghai_scenario):
        game = shanghai_scenario.game
        covered = sum(
            len(game.covered_tasks(i, j))
            for i in game.users
            for j in range(game.num_routes(i))
        )
        assert covered > 0

    def test_zero_tasks_scenario(self):
        sc = build_scenario(ScenarioConfig(n_users=4, n_tasks=0, seed=5))
        assert sc.num_tasks == 0


class TestNoCandidateRoutesError:
    def test_exported_and_a_runtime_error(self):
        from repro.scenario import NoCandidateRoutesError

        assert issubclass(NoCandidateRoutesError, RuntimeError)

    def test_scenario_user_factory_raises_clearly(self, shanghai_scenario):
        """A planner that never finds a route surfaces the typed error with
        the user id in the message, not an opaque index error."""
        from repro.scenario import NoCandidateRoutesError
        from repro.serve.churn import ScenarioUserFactory

        factory = ScenarioUserFactory(shanghai_scenario, seed=0)
        factory.scenario = _NoRouteScenario(shanghai_scenario)
        with pytest.raises(NoCandidateRoutesError, match="user 99"):
            factory(99)


class _NoRoutePlanner:
    def recommend(self, o, d, k):
        return []


class _NoRouteScenario:
    """Scenario proxy whose planner never finds any route."""

    def __init__(self, scenario):
        self.network = scenario.network
        self.tasks = scenario.tasks
        self.config = scenario.config
        self.planner = _NoRoutePlanner()
