"""Tests for repro.core.profile."""

import numpy as np
import pytest

from repro.core import StrategyProfile


class TestConstruction:
    def test_counts_computed(self, fig1_game):
        p = StrategyProfile(fig1_game, [1, 0, 0])  # all on task A
        assert p.count_of(0) == 3
        assert p.count_of(1) == 0

    def test_bad_shape(self, fig1_game):
        with pytest.raises(ValueError):
            StrategyProfile(fig1_game, [0, 0])

    def test_bad_route_index(self, fig1_game):
        with pytest.raises(IndexError):
            StrategyProfile(fig1_game, [0, 1, 0])  # u2 has one route

    def test_choices_copied(self, fig1_game):
        arr = np.array([0, 0, 0], dtype=np.intp)
        p = StrategyProfile(fig1_game, arr)
        arr[0] = 1
        assert p.route_of(0) == 0


class TestMove:
    def test_incremental_counts(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])
        assert p.count_of(0) == 2  # u2 + u3 on A
        old = p.move(0, 1)  # u1 joins A
        assert old == 0
        assert p.count_of(0) == 3
        assert p.count_of(1) == 0
        p.validate()

    def test_noop_move(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])
        before = p.counts.copy()
        p.move(0, 0)
        assert np.array_equal(p.counts, before)

    def test_move_out_of_range(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])
        with pytest.raises(IndexError):
            p.move(1, 1)

    def test_random_moves_keep_invariant(self, shanghai_game, rng):
        p = StrategyProfile.random(shanghai_game, rng)
        for _ in range(200):
            u = int(rng.integers(0, shanghai_game.num_users))
            j = int(rng.integers(0, shanghai_game.num_routes(u)))
            p.move(u, j)
        p.validate()


class TestViews:
    def test_counts_without(self, fig1_game):
        p = StrategyProfile(fig1_game, [1, 0, 0])
        wo = p.counts_without(0)
        assert wo[0] == 2
        assert p.count_of(0) == 3  # unchanged

    def test_covered_by(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 1])
        assert list(p.covered_by(2)) == [2]

    def test_copy_independent(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])
        q = p.copy()
        q.move(0, 1)
        assert p.route_of(0) == 0
        assert p.count_of(0) == 2 and q.count_of(0) == 3

    def test_equality_and_hash(self, fig1_game):
        a = StrategyProfile(fig1_game, [0, 0, 1])
        b = StrategyProfile(fig1_game, [0, 0, 1])
        c = StrategyProfile(fig1_game, [1, 0, 1])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr(self, fig1_game):
        assert "StrategyProfile" in repr(StrategyProfile(fig1_game, [0, 0, 0]))


class TestEnumeration:
    def test_all_profiles_count(self, fig1_game):
        profiles = list(StrategyProfile.all_profiles(fig1_game))
        assert len(profiles) == 2 * 1 * 2

    def test_all_profiles_distinct_and_valid(self, fig1_game):
        seen = set()
        for p in StrategyProfile.all_profiles(fig1_game):
            p.validate()
            seen.add(tuple(p.choices.tolist()))
        assert len(seen) == 4

    def test_random_profile_valid(self, shanghai_game, rng):
        p = StrategyProfile.random(shanghai_game, rng)
        p.validate()

    def test_huge_strategy_space_guarded(self):
        from repro.core import RouteNavigationGame

        # 30 users x 5 routes each: 5^30 profiles — enumeration must refuse.
        g = RouteNavigationGame.from_coverage(
            [[[0]] * 5 for _ in range(30)], base_rewards=[10.0]
        )
        with pytest.raises(ValueError, match="too large"):
            next(iter(StrategyProfile.all_profiles(g)))
