"""Tests for repro.core.convergence (Theorem 4)."""

import numpy as np
import pytest

from repro.algorithms import DGRN
from repro.core.convergence import (
    convergence_slot_bound,
    cost_bounds,
    potential_range,
    share_bounds,
    weight_extremes,
)
from repro.core.potential import potential
from repro.core import StrategyProfile

from tests.helpers import random_game


class TestShareBounds:
    def test_ordering(self, shanghai_game):
        g_min, g_max = share_bounds(shanghai_game)
        assert g_min <= g_max

    def test_bounds_cover_all_shares(self, rng):
        g = random_game(rng)
        g_min, g_max = share_bounds(g)
        m = g.num_users
        for k in range(g.num_tasks):
            a = float(g.tasks.base_rewards[k])
            mu = float(g.tasks.reward_increments[k])
            for q in range(1, m + 1):
                share = (a + mu * np.log(q)) / q
                assert g_min - 1e-12 <= share <= g_max + 1e-12


class TestCostBounds:
    def test_dominate_all_routes(self, shanghai_game):
        d_max, b_max = cost_bounds(shanghai_game)
        g = shanghai_game
        for i in g.users:
            for j in range(g.num_routes(i)):
                assert g.detour_cost(i, j) <= d_max + 1e-12
                assert g.congestion_cost(i, j) <= b_max + 1e-12


class TestWeightExtremes:
    def test_covers_all_weights(self, shanghai_game):
        e_min, e_max = weight_extremes(shanghai_game)
        for uw in shanghai_game.user_weights:
            for v in (uw.alpha, uw.beta, uw.gamma):
                assert e_min <= v <= e_max


class TestTheorem4:
    def test_bound_positive(self, shanghai_game):
        assert convergence_slot_bound(shanghai_game, 0.01) > 0

    def test_bound_shrinks_with_larger_min_gain(self, shanghai_game):
        loose = convergence_slot_bound(shanghai_game, 0.01)
        tight = convergence_slot_bound(shanghai_game, 1.0)
        assert tight < loose

    def test_invalid_gain(self, shanghai_game):
        with pytest.raises(ValueError):
            convergence_slot_bound(shanghai_game, 0.0)

    def test_measured_run_within_bound(self, shanghai_game):
        result = DGRN(seed=3).run(shanghai_game)
        assert result.converged
        if result.moves:
            min_gain = max(min(m.gain for m in result.moves), 1e-9)
            bound = convergence_slot_bound(shanghai_game, min_gain)
            assert result.decision_slots < bound


class TestPotentialRange:
    def test_random_profiles_inside_envelope(self, rng):
        for _ in range(10):
            g = random_game(rng)
            low, high = potential_range(g)
            for _ in range(5):
                p = StrategyProfile.random(g, rng)
                assert low - 1e-9 <= potential(p) <= high + 1e-9
