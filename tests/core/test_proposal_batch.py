"""Certification of the batched proposal engine against the scalar oracles.

The batched path must be *bit-for-bit* equivalent to looping the retained
scalar implementations:

- :func:`repro.core.responses.batch_best_updates` vs a per-user
  :func:`repro.core.responses.best_update` loop — same proposals, same
  gains/taus to the last bit, and (for ``pick="random"``) the exact same
  RNG stream consumption;
- :func:`repro.algorithms.muun.puu_select_batch` vs the Python-set
  :func:`~repro.algorithms.muun.puu_select` /
  :func:`~repro.algorithms.muun._select_by_tau` oracles — same granted
  set in the same priority order, including the ``tau`` ablation;
- full DGRN / MUUN runs vs a scalar "shadow" replaying the pre-batch
  per-user slot loop with the same seed — identical move sequences,
  bitwise-identical profit / total-profit histories, and potential
  histories equal up to incremental summation drift.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import DGRN, MUUN
from repro.algorithms.base import RunConfig
from repro.algorithms.muun import _select_by_tau, puu_select, puu_select_batch
from repro.core import StrategyProfile
from repro.core.backend import available_backends, use_backend
from repro.core.potential import potential
from repro.core.profit import all_profits
from repro.core.responses import batch_best_updates, best_update

from tests.helpers import games, random_game


@st.composite
def game_and_profile(draw):
    game = draw(games())
    choices = [
        draw(st.integers(0, game.num_routes(i) - 1)) for i in game.users
    ]
    return game, StrategyProfile(game, choices)


def _scalar_sweep(profile, users, *, pick, rng=None):
    """The pre-batch per-user loop: one best_update call per user."""
    out = []
    for u in users:
        prop = best_update(profile, int(u), pick=pick, rng=rng)
        if prop is not None:
            out.append(prop)
    return out


# Batch-vs-scalar equality must hold bit-for-bit *within* every installed
# backend: both paths dispatch to the same kernels, so the batched engine
# may not perturb a single bit regardless of which backend runs them.
@pytest.mark.parametrize("backend_name", available_backends())
class TestBatchVsScalarOracle:
    @given(game_and_profile())
    @settings(max_examples=60, deadline=None)
    def test_pick_first_matches_scalar_loop(self, backend_name, gp):
        game, profile = gp
        with use_backend(backend_name):
            users = np.arange(game.num_users, dtype=np.intp)
            batch = batch_best_updates(profile, users, pick="first")
            oracle = _scalar_sweep(profile, users, pick="first")
            self._assert_batch_equals(batch, oracle)

    @given(game_and_profile(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_pick_random_matches_scalar_loop_and_rng_stream(
        self, backend_name, gp, seed
    ):
        game, profile = gp
        with use_backend(backend_name):
            users = np.arange(game.num_users, dtype=np.intp)
            rng_b = np.random.default_rng(seed)
            rng_s = np.random.default_rng(seed)
            batch = batch_best_updates(
                profile, users, pick="random", rng=rng_b
            )
            oracle = _scalar_sweep(profile, users, pick="random", rng=rng_s)
            self._assert_batch_equals(batch, oracle)
            # Same draws in the same order: the generators end in the same
            # state.
            assert rng_b.bit_generator.state == rng_s.bit_generator.state

    @given(game_and_profile(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_user_subset_matches_scalar_loop(self, backend_name, gp, data):
        game, profile = gp
        subset = sorted(
            data.draw(
                st.sets(st.integers(0, game.num_users - 1), min_size=0)
            )
        )
        with use_backend(backend_name):
            users = np.asarray(subset, dtype=np.intp)
            batch = batch_best_updates(profile, users, pick="first")
            oracle = _scalar_sweep(profile, users, pick="first")
            self._assert_batch_equals(batch, oracle)

    @staticmethod
    def _assert_batch_equals(batch, oracle):
        assert len(batch) == len(oracle)
        for k, prop in enumerate(oracle):
            assert int(batch.users[k]) == prop.user
            assert int(batch.new_routes[k]) == prop.new_route
            # Bitwise, not approximate: same gather + same reduction.
            assert float(batch.gains[k]) == prop.gain
            assert float(batch.taus[k]) == prop.tau
            assert frozenset(int(t) for t in batch.tasks_of(k)) == (
                prop.touched_tasks
            )
            assert float(batch.deltas[k]) == prop.delta
        # The object view round-trips.
        assert batch.as_list() == list(oracle)

    def test_rejects_non_ascending_users(self, backend_name):
        game = random_game(np.random.default_rng(0))
        profile = StrategyProfile.random(game, np.random.default_rng(1))
        with use_backend(backend_name):
            with pytest.raises(ValueError, match="ascending"):
                batch_best_updates(
                    profile, np.asarray([0, 0], dtype=np.intp), pick="first"
                )


class TestPUUBatchVsOracle:
    @given(game_and_profile(), st.sampled_from(["delta", "tau"]))
    @settings(max_examples=60, deadline=None)
    def test_granted_set_matches_scalar_selection(self, gp, sort_key):
        game, profile = gp
        users = np.arange(game.num_users, dtype=np.intp)
        batch = batch_best_updates(profile, users, pick="first")
        select = puu_select if sort_key == "delta" else _select_by_tau
        oracle = select(batch.as_list())
        granted = puu_select_batch(batch, game.num_tasks, sort_key=sort_key)
        assert [batch.triple(k) for k in granted] == [
            (p.user, p.new_route, p.gain) for p in oracle
        ]


# --------------------------------------------------------------- trajectories
class _ScalarCache:
    """The pre-batch ProposalCache: per-user best_update calls, Python sets."""

    def __init__(self, game, *, pick, rng=None):
        self.game = game
        self.pick = pick
        self.rng = rng
        self._tu_indptr, self._tu_users = game.arrays.task_user_csr()
        self._cached = {}
        self._dirty = set(int(u) for u in game.users)

    def proposals(self, profile):
        for u in sorted(self._dirty):
            self._cached[u] = best_update(
                profile, u, pick=self.pick, rng=self.rng
            )
        self._dirty.clear()
        return [
            p for _, p in sorted(self._cached.items()) if p is not None
        ]

    def note_move(self, user, old_route, new_route):
        ga = self.game.arrays
        self._dirty.add(int(user))
        gained, lost = ga.changed_tasks(
            ga.route_id(user, old_route), ga.route_id(user, new_route)
        )
        for t in np.concatenate([gained, lost]):
            seg = self._tu_users[
                self._tu_indptr[t] : self._tu_indptr[t + 1]
            ]
            self._dirty.update(int(u) for u in seg)


def _shadow_run(kind, game, seed, *, sort_key="delta", max_slots=400):
    """Replay of the pre-batch slot loop with full per-slot recomputes."""
    rng = np.random.default_rng(seed)
    profile = StrategyProfile.random(game, rng)
    cache = _ScalarCache(game, pick="random", rng=rng)
    moves = []
    phis = [potential(profile)]
    profit_rows = [all_profits(profile)]
    slot = 0
    converged = False
    while slot < max_slots:
        props = cache.proposals(profile)
        if not props:
            converged = True
            break
        if kind == "dgrn":
            granted = [props[int(rng.integers(0, len(props)))]]
        else:
            select = puu_select if sort_key == "delta" else _select_by_tau
            granted = select(props)
        slot += 1
        for p in granted:
            old = profile.move(p.user, p.new_route)
            moves.append((slot, p.user, old, p.new_route, p.gain))
            cache.note_move(p.user, old, p.new_route)
        phis.append(potential(profile))
        profit_rows.append(all_profits(profile))
    return {
        "moves": moves,
        "choices": np.array(profile.choices),
        "phis": np.asarray(phis),
        "profits": np.vstack(profit_rows),
        "converged": converged,
    }


@pytest.mark.parametrize("backend_name", available_backends())
class TestTrajectoryIdentity:
    """Fixed-seed DGRN/MUUN runs reproduce the scalar shadow exactly.

    Parametrized over every installed kernel backend: the shadow and the
    allocator both dispatch through the same backend, so move sequences,
    RNG streams, and profit histories must agree bitwise *within* each
    backend (cross-backend agreement is bounded by the declared rtol and
    certified by the scalar-oracle suites instead).
    """

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize(
        "kind,sort_key",
        [("dgrn", "delta"), ("muun", "delta"), ("muun", "tau")],
    )
    def test_runs_match_shadow(self, kind, sort_key, seed, backend_name):
        game = random_game(
            np.random.default_rng(300 + seed),
            max_users=8,
            max_tasks=12,
            max_routes=5,
        )
        config = RunConfig(max_slots=400)
        if kind == "dgrn":
            alloc = DGRN(seed=seed, config=config)
        else:
            alloc = MUUN(seed=seed, config=config, sort_key=sort_key)
        with use_backend(backend_name):
            result = alloc.run(game)
            shadow = _shadow_run(kind, game, seed, sort_key=sort_key)

        assert [
            (m.slot, m.user, m.old_route, m.new_route, m.gain)
            for m in result.moves
        ] == shadow["moves"]
        assert np.array_equal(result.profile.choices, shadow["choices"])
        assert result.converged == shadow["converged"]
        # Profit histories are maintained incrementally but must stay
        # bitwise identical to the full per-slot recompute.
        assert np.array_equal(result.profit_history, shadow["profits"])
        assert np.array_equal(
            result.total_profit_history, shadow["profits"].sum(axis=1)
        )
        # Potential advances by summed tau per slot; only float summation
        # drift vs the exact per-slot recompute is tolerated.
        np.testing.assert_allclose(
            result.potential_history, shadow["phis"], rtol=0, atol=1e-9
        )

    @pytest.mark.parametrize("kind", ["dgrn", "muun"])
    def test_validate_mode_accepts_incremental_histories(
        self, kind, backend_name
    ):
        game = random_game(
            np.random.default_rng(42), max_users=8, max_tasks=12, max_routes=5
        )
        config = RunConfig(max_slots=400, validate=True)
        alloc = DGRN(seed=7, config=config) if kind == "dgrn" else MUUN(
            seed=7, config=config
        )
        with use_backend(backend_name):
            result = alloc.run(game)
            assert result.converged
            # Validate mode substitutes exact values, so the recorded
            # potential equals the full recompute exactly.
            assert result.potential_history[-1] == potential(result.profile)
