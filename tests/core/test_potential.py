"""Tests for repro.core.potential (Theorem 2)."""

import numpy as np
import pytest

from repro.core import StrategyProfile, potential
from repro.core.potential import potential_delta, potential_trajectory
from repro.core.profit import candidate_profits

from tests.helpers import random_game


class TestPotentialIdentity:
    """P_i(s') - P_i(s) = alpha_i (phi(s') - phi(s))  (Eq. 11)."""

    def test_fig1(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])
        for u in fig1_game.users:
            cp = candidate_profits(p, u)
            for j in range(fig1_game.num_routes(u)):
                d_profit = cp[j] - cp[p.route_of(u)]
                d_phi = potential_delta(p, u, j)
                alpha = fig1_game.user_weights[u].alpha
                assert d_profit == pytest.approx(alpha * d_phi, abs=1e-9)

    def test_random_games(self, rng):
        for _ in range(25):
            g = random_game(rng)
            p = StrategyProfile.random(g, rng)
            for u in g.users:
                cp = candidate_profits(p, u)
                alpha = g.user_weights[u].alpha
                for j in range(g.num_routes(u)):
                    d_profit = cp[j] - cp[p.route_of(u)]
                    assert d_profit == pytest.approx(
                        alpha * potential_delta(p, u, j), abs=1e-8
                    )

    def test_scenario_game(self, shanghai_game, rng):
        p = StrategyProfile.random(shanghai_game, rng)
        for u in range(shanghai_game.num_users):
            cp = candidate_profits(p, u)
            alpha = shanghai_game.user_weights[u].alpha
            for j in range(shanghai_game.num_routes(u)):
                d_profit = cp[j] - cp[p.route_of(u)]
                assert d_profit == pytest.approx(
                    alpha * potential_delta(p, u, j), abs=1e-8
                )


class TestPotentialDelta:
    def test_matches_full_evaluation(self, rng):
        for _ in range(20):
            g = random_game(rng)
            p = StrategyProfile.random(g, rng)
            u = int(rng.integers(0, g.num_users))
            j = int(rng.integers(0, g.num_routes(u)))
            before = potential(p)
            delta = potential_delta(p, u, j)
            p.move(u, j)
            assert potential(p) == pytest.approx(before + delta, abs=1e-9)

    def test_noop_zero(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])
        assert potential_delta(p, 0, 0) == 0.0


class TestTrajectory:
    def test_replays_move_sequence(self, rng):
        g = random_game(rng, max_users=4)
        p = StrategyProfile.random(g, rng)
        init = p.choices.copy()
        moves = []
        for _ in range(10):
            u = int(rng.integers(0, g.num_users))
            j = int(rng.integers(0, g.num_routes(u)))
            moves.append((u, j))
        traj = potential_trajectory(g, init, moves)
        assert len(traj) == 11
        # Verify endpoints against full evaluation.
        q = StrategyProfile(g, init)
        assert traj[0] == pytest.approx(potential(q))
        for u, j in moves:
            q.move(u, j)
        assert traj[-1] == pytest.approx(potential(q), abs=1e-9)
