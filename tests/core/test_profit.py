"""Tests for repro.core.profit (Eq. 2 semantics)."""

import math

import numpy as np
import pytest

from repro.core import PlatformWeights, RouteNavigationGame, StrategyProfile, UserWeights
from repro.core.profit import (
    all_profits,
    candidate_profits,
    profit_if_moved,
    profit_of_user,
    total_profit,
)


class TestFig1Profits:
    """Exact values of the paper's Fig. 1 table."""

    def test_distributed_equilibrium_profits(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])  # u1:r1, u2:r3, u3:r4
        profits = all_profits(p)
        assert profits[0] == pytest.approx(5.0)
        assert profits[1] == pytest.approx(3.0)  # 6/2
        assert profits[2] == pytest.approx(3.0)
        assert total_profit(p) == pytest.approx(11.0)

    def test_maximum_profit_solution(self, fig1_game):
        p = StrategyProfile(fig1_game, [1, 0, 0])  # all on task A
        assert np.allclose(all_profits(p), 2.0)  # 6/3 each
        assert total_profit(p) == pytest.approx(6.0)

    def test_centralized_optimal(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 1])  # u1:r1, u2:r3, u3:r5
        assert total_profit(p) == pytest.approx(12.0)


class TestCostTerms:
    def make_game(self):
        return RouteNavigationGame.from_coverage(
            [[[0], [1]]],
            base_rewards=[10.0, 8.0],
            detours=[[1.0, 3.0]],
            congestions=[[2.0, 0.5]],
            user_weights=[UserWeights(0.6, 0.4, 0.2)],
            platform=PlatformWeights(0.5, 0.5),
        )

    def test_profit_includes_costs(self):
        g = self.make_game()
        p = StrategyProfile(g, [0])
        expected = 0.6 * 10.0 - 0.4 * (0.5 * 1.0) - 0.2 * (0.5 * 2.0)
        assert profit_of_user(p, 0) == pytest.approx(expected)

    def test_alpha_scales_reward_only(self):
        g = self.make_game()
        g2 = g.with_user_weights(0, UserWeights(0.3, 0.4, 0.2))
        p, p2 = StrategyProfile(g, [0]), StrategyProfile(g2, [0])
        diff = profit_of_user(p, 0) - profit_of_user(p2, 0)
        assert diff == pytest.approx((0.6 - 0.3) * 10.0)


class TestSharing:
    def test_log_reward_split(self):
        g = RouteNavigationGame.from_coverage(
            [[[0]], [[0]]],
            base_rewards=[10.0],
            reward_increments=[0.8],
            user_weights=[UserWeights(1.0, 0.5, 0.5)] * 2,
        )
        p = StrategyProfile(g, [0, 0])
        share = (10.0 + 0.8 * math.log(2)) / 2
        assert profit_of_user(p, 0) == pytest.approx(share)
        assert profit_of_user(p, 1) == pytest.approx(share)


class TestCandidateProfits:
    def test_current_entry_matches_profit(self, fig1_game):
        p = StrategyProfile(fig1_game, [1, 0, 0])
        for u in fig1_game.users:
            cp = candidate_profits(p, u)
            assert cp[p.route_of(u)] == pytest.approx(profit_of_user(p, u))

    def test_counterfactual_adds_self(self, fig1_game):
        # u1 on r1; switching to r2 makes three users on task A.
        p = StrategyProfile(fig1_game, [0, 0, 0])
        cp = candidate_profits(p, 0)
        assert cp[1] == pytest.approx(2.0)  # 6/3

    def test_matches_actual_move(self, shanghai_game, rng):
        p = StrategyProfile.random(shanghai_game, rng)
        for u in range(shanghai_game.num_users):
            cp = candidate_profits(p, u)
            for j in range(shanghai_game.num_routes(u)):
                q = p.copy()
                q.move(u, j)
                assert cp[j] == pytest.approx(profit_of_user(q, u)), (u, j)

    def test_profit_if_moved(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])
        assert profit_if_moved(p, 2, 1) == pytest.approx(1.0)

    def test_empty_route_pure_cost(self):
        g = RouteNavigationGame.from_coverage(
            [[[0], []]],
            base_rewards=[10.0],
            detours=[[0.0, 1.0]],
            congestions=[[0.0, 1.0]],
            user_weights=[UserWeights(0.5, 0.5, 0.5)],
            platform=PlatformWeights(0.5, 0.5),
        )
        p = StrategyProfile(g, [0])
        cp = candidate_profits(p, 0)
        assert cp[1] == pytest.approx(-(0.5 * 0.5 + 0.5 * 0.5))


class TestAllProfits:
    def test_matches_per_user(self, shanghai_game, rng):
        p = StrategyProfile.random(shanghai_game, rng)
        vec = all_profits(p)
        for u in range(shanghai_game.num_users):
            assert vec[u] == pytest.approx(profit_of_user(p, u))

    def test_total_is_sum(self, shanghai_game, rng):
        p = StrategyProfile.random(shanghai_game, rng)
        assert total_profit(p) == pytest.approx(float(all_profits(p).sum()))
