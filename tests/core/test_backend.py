"""Backend registry behaviour: resolution, fallback, pickling, propagation.

Numerical parity of the backends is certified by the parametrized oracle
suites (``test_kernels_properties.py``, ``test_proposal_batch.py``); this
file covers the *plumbing*: precedence of the selection channels, the
warn-once graceful degradation when a compiled backend is missing, and
that a pinned backend survives the transports the serving layer uses.
"""

import pickle
import warnings

import numpy as np
import pytest

import repro.core.backend as backend_mod
from repro.core.backend import (
    BackendFallbackWarning,
    NumpyBackend,
    available_backends,
    current_backend,
    get_backend,
    set_backend,
    use_backend,
)

from tests.helpers import random_game


@pytest.fixture(autouse=True)
def _clean_registry(monkeypatch):
    """Each test sees a fresh process-default and warn-once state."""
    monkeypatch.setattr(backend_mod, "_process_default", None)
    monkeypatch.setattr(backend_mod, "_warned", set())
    monkeypatch.delenv(backend_mod.ENV_VAR, raising=False)
    yield


class TestResolution:
    def test_default_is_numpy(self):
        b = current_backend()
        assert b.name == "numpy"
        assert isinstance(b, NumpyBackend)
        assert b.rtol == 0.0

    def test_instances_are_process_singletons(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_env_var_resolves(self, monkeypatch):
        monkeypatch.setenv(backend_mod.ENV_VAR, "numpy")
        assert current_backend().name == "numpy"

    def test_set_backend_beats_env(self, monkeypatch):
        # Env asks for an unknown name; the explicit set wins and no
        # fallback warning fires because the env value is never resolved.
        monkeypatch.setenv(backend_mod.ENV_VAR, "no-such-backend")
        with warnings.catch_warnings():
            warnings.simplefilter("error", BackendFallbackWarning)
            set_backend("numpy")
            assert current_backend().name == "numpy"

    def test_use_backend_restores_previous_default(self):
        set_backend("numpy")
        with use_backend("numpy") as b:
            assert current_backend() is b
        assert backend_mod._process_default == "numpy"

    def test_available_backends_lists_numpy_first(self):
        names = available_backends()
        assert names[0] == "numpy"
        assert len(names) == len(set(names))

    def test_numpy_warmup_is_free(self):
        assert get_backend("numpy").warmup() == 0.0
        info = get_backend("numpy").info()
        assert info["name"] == "numpy"
        assert info["rtol"] == 0.0


class TestGracefulFallback:
    def test_unknown_name_falls_back_with_single_warning(self):
        with pytest.warns(BackendFallbackWarning, match="no-such-backend"):
            b = get_backend("no-such-backend")
        assert b.name == "numpy"
        # Second request for the same broken name: silent (warn-once).
        with warnings.catch_warnings():
            warnings.simplefilter("error", BackendFallbackWarning)
            assert get_backend("no-such-backend").name == "numpy"

    def test_missing_compiled_backend_never_raises(self):
        # Whichever of numba/cupy is absent must degrade, not ImportError.
        installed = set(available_backends())
        for name in ("numba", "cupy"):
            if name in installed:
                continue
            with pytest.warns(BackendFallbackWarning, match=name):
                assert get_backend(name).name == "numpy"

    def test_strict_mode_surfaces_the_error(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("no-such-backend", strict=True)
        for name in ("numba", "cupy"):
            if name in set(available_backends()):
                continue
            with pytest.raises(Exception):
                get_backend(name, strict=True)

    def test_set_backend_reports_resolved_name(self):
        with pytest.warns(BackendFallbackWarning):
            b = set_backend("no-such-backend")
        assert b.name == "numpy"
        # The process default records what actually runs, not the request.
        assert backend_mod._process_default == "numpy"


class TestGameArraysIntegration:
    def test_instance_override_beats_process_default(self):
        game = random_game(np.random.default_rng(0))
        ga = game.arrays
        assert ga.backend is current_backend()
        pinned = NumpyBackend()
        ga.set_backend(pinned)
        assert ga.backend is pinned
        ga.set_backend(None)
        assert ga.backend is current_backend()

    def test_set_backend_accepts_names_and_chains(self):
        game = random_game(np.random.default_rng(1))
        ga = game.arrays.set_backend("numpy")
        assert ga.backend is get_backend("numpy")

    def test_pickle_round_trip_preserves_pinned_backend(self):
        game = random_game(np.random.default_rng(2))
        ga = game.arrays
        ga.set_backend("numpy")
        clone = pickle.loads(pickle.dumps(ga))
        assert clone.backend is get_backend("numpy")
        assert clone._backend is not None  # pinned, not ambient

    def test_pickle_round_trip_without_pin_stays_ambient(self):
        game = random_game(np.random.default_rng(3))
        clone = pickle.loads(pickle.dumps(game.arrays))
        assert clone._backend is None
        assert clone.backend is current_backend()

    def test_shared_memory_round_trip_stays_ambient(self):
        game = random_game(np.random.default_rng(4))
        ga = game.arrays
        block, table = ga.to_shared()
        try:
            view = type(ga).from_table(table, block.buf)
            assert view._backend is None
            assert view.backend is current_backend()
        finally:
            block.close()

    def test_kernels_dispatch_through_instance_backend(self):
        calls = []

        class Spy(NumpyBackend):
            name = "spy"

            def potential_delta(self, ga, counts, old_g, new_g):
                calls.append((old_g, new_g))
                return super().potential_delta(ga, counts, old_g, new_g)

        from repro.core import StrategyProfile

        game = random_game(np.random.default_rng(5))
        ga = game.arrays.set_backend(Spy())
        profile = StrategyProfile(game, [0] * game.num_users)
        ga.potential_delta(profile.counts, 0, 1)
        assert calls == [(0, 1)]


class TestPropagation:
    def test_allocator_backend_pins_game_arrays(self):
        from repro.algorithms import DGRN
        from repro.algorithms.base import RunConfig

        game = random_game(np.random.default_rng(6))
        alloc = DGRN(
            seed=0, config=RunConfig(max_slots=50), backend="numpy"
        )
        alloc.run(game)
        assert game.arrays._backend is get_backend("numpy")

    def test_worker_ensure_backend_installs_process_default(self, monkeypatch):
        from repro.serve import workers

        monkeypatch.setattr(workers, "_BACKEND_READY", None)
        workers._ensure_backend("numpy")
        assert backend_mod._process_default == "numpy"
        assert workers._BACKEND_READY == "numpy"
        # Idempotent: a second call with the same name is a no-op.
        workers._ensure_backend("numpy")

    def test_shard_pool_carries_backend_name(self):
        from repro.serve.workers import ShardPool

        pool = ShardPool(1, use_shm=False, backend="numpy")
        try:
            assert pool.backend == "numpy"
        finally:
            pool.shutdown()

    def test_serve_session_pins_engines(self):
        from repro.serve.churn import synthetic_serve_instance
        from repro.serve.session import ServeSession

        tasks, platform, records, partition, _ = synthetic_serve_instance(
            12, 8, 2, seed=0
        )
        with ServeSession(
            tasks=tasks,
            platform=platform,
            records=records,
            partition=partition,
            seed=0,
            backend="numpy",
        ) as sess:
            for engine in sess.engines:
                if engine is not None:
                    assert engine.spec.game.arrays._backend is get_backend(
                        "numpy"
                    )
            sess.run_round()
