"""Tests for repro.core.poa (Theorem 5)."""

import math

import pytest

from repro.algorithms import BUAU, CORN
from repro.core.poa import (
    empirical_poa_ratio,
    poa_lower_bound,
    special_case_poa_bounds,
)

from tests.helpers import random_game


class TestSpecialCaseBounds:
    def test_formula(self):
        # 3 users, 2 common tasks, a = 5, no private routes worth anything.
        lower, upper = special_case_poa_bounds(3, 2, 5.0, [0.0, 0.0, 0.0])
        p = (3 + 2 - 1) / 2
        p_min = (5.0 + math.log(p)) / p
        assert lower == pytest.approx((3 * p_min) / (3 * 5.0))
        assert upper == 1.0

    def test_private_routes_raise_bound(self):
        no_priv, _ = special_case_poa_bounds(4, 2, 5.0, [0.0] * 4)
        with_priv, _ = special_case_poa_bounds(4, 2, 5.0, [5.0] * 4)
        assert with_priv == pytest.approx(1.0)
        assert no_priv < with_priv

    def test_bound_in_unit_interval(self):
        for m in (2, 5, 10):
            for l in (1, 3, 7):
                lower, upper = special_case_poa_bounds(m, l, 8.0, [1.0] * m)
                assert 0.0 < lower <= upper == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            special_case_poa_bounds(0, 1, 5.0, [])
        with pytest.raises(ValueError):
            special_case_poa_bounds(2, 1, 5.0, [1.0])  # wrong length


class TestGeneralBound:
    def test_in_unit_interval(self, rng):
        for _ in range(20):
            g = random_game(rng)
            b = poa_lower_bound(g)
            assert 0.0 <= b <= 1.0

    def test_dominated_by_measured_ratio(self, rng):
        # On small games: NE/OPT ratio should beat the pessimistic bound.
        for _ in range(10):
            g = random_game(rng, max_users=4, max_routes=3, max_tasks=5)
            ne = BUAU(seed=0).run(g)
            opt = CORN(seed=0).run(g)
            if opt.total_profit <= 0:
                continue
            ratio = empirical_poa_ratio(ne.profile, opt.profile)
            assert ratio >= poa_lower_bound(g) - 1e-9

    def test_ratio_at_most_one(self, rng):
        for _ in range(10):
            g = random_game(rng, max_users=4)
            ne = BUAU(seed=1).run(g)
            opt = CORN(seed=1).run(g)
            if opt.total_profit > 0:
                assert empirical_poa_ratio(ne.profile, opt.profile) <= 1.0 + 1e-9


class TestEmpiricalRatio:
    def test_rejects_nonpositive_optimum(self):
        from repro.core import RouteNavigationGame, StrategyProfile

        # A game whose only route covers nothing: total profit is 0.
        g = RouteNavigationGame.from_coverage([[[]]], base_rewards=[1.0])
        p = StrategyProfile(g, [0])
        with pytest.raises(ValueError):
            empirical_poa_ratio(p, p)

    def test_fig1_ratio(self, fig1_game):
        from repro.core import StrategyProfile

        ne = StrategyProfile(fig1_game, [0, 0, 0])  # total 11
        opt = StrategyProfile(fig1_game, [0, 0, 1])  # total 12
        assert empirical_poa_ratio(ne, opt) == pytest.approx(11 / 12)
