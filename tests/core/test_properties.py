"""Hypothesis property tests on the game core's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import StrategyProfile, potential
from repro.core.equilibrium import epsilon_nash_gap, is_nash_equilibrium
from repro.core.potential import potential_delta
from repro.core.profit import all_profits, candidate_profits, total_profit
from repro.core.responses import best_response_set, better_responses

from tests.helpers import games


@st.composite
def game_and_profile(draw):
    game = draw(games())
    choices = [
        draw(st.integers(0, game.num_routes(i) - 1)) for i in game.users
    ]
    return game, StrategyProfile(game, choices)


class TestWeightedPotentialProperty:
    """The defining identity of the weighted potential game (Theorem 2)."""

    @given(game_and_profile())
    @settings(max_examples=60, deadline=None)
    def test_eq11_for_every_unilateral_move(self, gp):
        game, profile = gp
        for u in game.users:
            cp = candidate_profits(profile, u)
            alpha = game.user_weights[u].alpha
            cur = cp[profile.route_of(u)]
            for j in range(game.num_routes(u)):
                d_phi = potential_delta(profile, u, j)
                assert cp[j] - cur == pytest.approx(alpha * d_phi, abs=1e-7)

    @given(game_and_profile())
    @settings(max_examples=40, deadline=None)
    def test_delta_matches_full_potential(self, gp):
        game, profile = gp
        before = potential(profile)
        for u in game.users:
            for j in range(game.num_routes(u)):
                delta = potential_delta(profile, u, j)
                q = profile.copy()
                q.move(u, j)
                assert potential(q) == pytest.approx(before + delta, abs=1e-7)


class TestCounterInvariants:
    @given(game_and_profile(), st.lists(st.integers(0, 10_000), max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_counts_consistent_after_any_move_sequence(self, gp, raw_moves):
        game, profile = gp
        for r in raw_moves:
            u = r % game.num_users
            j = (r // 7) % game.num_routes(u)
            profile.move(u, j)
        profile.validate()

    @given(game_and_profile())
    @settings(max_examples=40, deadline=None)
    def test_counts_bounded_by_users(self, gp):
        game, profile = gp
        assert np.all(profile.counts >= 0)
        assert np.all(profile.counts <= game.num_users)


class TestResponseProperties:
    @given(game_and_profile())
    @settings(max_examples=40, deadline=None)
    def test_best_subset_of_better(self, gp):
        game, profile = gp
        for u in game.users:
            assert set(best_response_set(profile, u)) <= set(
                better_responses(profile, u)
            )

    @given(game_and_profile())
    @settings(max_examples=40, deadline=None)
    def test_nash_iff_gap_zero(self, gp):
        _, profile = gp
        assert is_nash_equilibrium(profile) == (
            epsilon_nash_gap(profile) <= 1e-9
        )

    @given(game_and_profile())
    @settings(max_examples=40, deadline=None)
    def test_improving_move_raises_both_profit_and_potential(self, gp):
        game, profile = gp
        for u in game.users:
            options = better_responses(profile, u)
            if not options:
                continue
            j = options[0]
            before_profit = candidate_profits(profile, u)[profile.route_of(u)]
            before_phi = potential(profile)
            q = profile.copy()
            q.move(u, j)
            after_profit = candidate_profits(q, u)[q.route_of(u)]
            assert after_profit > before_profit
            assert potential(q) > before_phi - 1e-9


class TestProfitProperties:
    @given(game_and_profile())
    @settings(max_examples=40, deadline=None)
    def test_total_is_sum_of_users(self, gp):
        _, profile = gp
        assert total_profit(profile) == pytest.approx(
            float(all_profits(profile).sum()), abs=1e-9
        )

    @given(game_and_profile())
    @settings(max_examples=40, deadline=None)
    def test_candidate_profit_matches_committed_move(self, gp):
        game, profile = gp
        for u in game.users:
            cp = candidate_profits(profile, u)
            for j in range(game.num_routes(u)):
                q = profile.copy()
                q.move(u, j)
                assert cp[j] == pytest.approx(
                    float(all_profits(q)[u]), abs=1e-9
                )
