"""Tests for repro.core.weights."""

import pytest

from repro.core.weights import PlatformWeights, UserWeights


class TestUserWeights:
    def test_valid(self):
        w = UserWeights(0.3, 0.5, 0.7)
        assert (w.alpha, w.beta, w.gamma) == (0.3, 0.5, 0.7)

    def test_bounds_enforced(self):
        with pytest.raises(ValueError, match="alpha"):
            UserWeights(0.01, 0.5, 0.5)
        with pytest.raises(ValueError, match="gamma"):
            UserWeights(0.5, 0.5, 1.5)

    def test_e_min_must_be_positive(self):
        with pytest.raises(ValueError):
            UserWeights(0.5, 0.5, 0.5, e_min=0.0)

    def test_custom_bounds(self):
        w = UserWeights(2.0, 3.0, 4.0, e_min=1.0, e_max=5.0)
        assert w.alpha == 2.0

    def test_replace(self):
        w = UserWeights(0.3, 0.5, 0.7)
        w2 = w.replace(alpha=0.8)
        assert w2.alpha == 0.8 and w2.beta == 0.5
        assert w.alpha == 0.3  # frozen original

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            UserWeights(0.3, 0.5, 0.7).replace(beta=7.0)

    def test_random_in_range(self, rng):
        for _ in range(20):
            w = UserWeights.random(rng, low=0.1, high=0.9)
            assert 0.1 <= w.alpha <= 0.9
            assert 0.1 <= w.beta <= 0.9
            assert 0.1 <= w.gamma <= 0.9

    def test_random_reproducible(self):
        assert UserWeights.random(5) == UserWeights.random(5)


class TestPlatformWeights:
    def test_valid(self):
        p = PlatformWeights(0.2, 0.6)
        assert (p.phi, p.theta) == (0.2, 0.6)

    def test_zero_allowed(self):
        assert PlatformWeights(0.0, 0.0).phi == 0.0

    def test_one_rejected(self):
        with pytest.raises(ValueError):
            PlatformWeights(1.0, 0.5)
        with pytest.raises(ValueError):
            PlatformWeights(0.5, 1.0)

    def test_replace(self):
        p = PlatformWeights(0.2, 0.6).replace(theta=0.1)
        assert (p.phi, p.theta) == (0.2, 0.1)

    def test_random_in_range(self, rng):
        for _ in range(20):
            p = PlatformWeights.random(rng)
            assert 0.1 <= p.phi <= 0.8 and 0.1 <= p.theta <= 0.8
