"""Tests certifying the vectorized batch evaluator against the scalar path."""

import numpy as np
import pytest

from repro.core import StrategyProfile
from repro.core.batch import BatchEvaluator, all_choice_matrix, exhaustive_total_profits
from repro.core.profit import total_profit

from tests.helpers import random_game


class TestBatchEvaluator:
    def test_counts_match_profiles(self, rng):
        for _ in range(10):
            g = random_game(rng)
            ev = BatchEvaluator(g)
            choices = np.stack(
                [StrategyProfile.random(g, rng).choices for _ in range(8)]
            )
            batch_counts = ev.counts(choices)
            for row, ch in zip(batch_counts, choices):
                assert np.array_equal(
                    row.astype(int), StrategyProfile(g, ch).counts
                )

    def test_total_profits_match_scalar(self, rng):
        for _ in range(15):
            g = random_game(rng)
            ev = BatchEvaluator(g)
            choices = np.stack(
                [StrategyProfile.random(g, rng).choices for _ in range(10)]
            )
            batch = ev.total_profits(choices)
            for value, ch in zip(batch, choices):
                assert value == pytest.approx(
                    total_profit(StrategyProfile(g, ch)), abs=1e-9
                )

    def test_single_profile_1d_input(self, fig1_game):
        ev = BatchEvaluator(fig1_game)
        assert ev.total_profits(np.array([0, 0, 0]))[0] == pytest.approx(11.0)

    def test_out_of_range_rejected(self, fig1_game):
        ev = BatchEvaluator(fig1_game)
        with pytest.raises(ValueError):
            ev.total_profits(np.array([[0, 1, 0]]))  # u2 has one route

    def test_wrong_width_rejected(self, fig1_game):
        ev = BatchEvaluator(fig1_game)
        with pytest.raises(ValueError):
            ev.total_profits(np.zeros((2, 2), dtype=int))


class TestAllChoiceMatrix:
    def test_fig1_space(self, fig1_game):
        mat = all_choice_matrix(fig1_game)
        assert mat.shape == (4, 3)
        assert len({tuple(r) for r in mat.tolist()}) == 4

    def test_matches_iterator(self, rng):
        g = random_game(rng, max_users=4)
        mat = {tuple(r) for r in all_choice_matrix(g).tolist()}
        it = {
            tuple(int(c) for c in p.choices)
            for p in StrategyProfile.all_profiles(g)
        }
        assert mat == it

    def test_limit_guard(self, rng):
        from repro.core import RouteNavigationGame

        g = RouteNavigationGame.from_coverage(
            [[[0]] * 4 for _ in range(20)], base_rewards=[1.0]
        )
        with pytest.raises(ValueError, match="too large"):
            all_choice_matrix(g)


class TestExhaustive:
    def test_max_matches_exhaustive_optimum(self, rng):
        from repro.algorithms import exhaustive_optimum

        for _ in range(10):
            g = random_game(rng, max_users=4)
            _, profits = exhaustive_total_profits(g)
            _, opt = exhaustive_optimum(g)
            assert float(profits.max()) == pytest.approx(opt, abs=1e-9)

    def test_fig1_values(self, fig1_game):
        choices, profits = exhaustive_total_profits(fig1_game)
        table = {tuple(c): float(v) for c, v in zip(choices.tolist(), profits)}
        assert table[(0, 0, 0)] == pytest.approx(11.0)
        assert table[(0, 0, 1)] == pytest.approx(12.0)
        assert table[(1, 0, 0)] == pytest.approx(6.0)
