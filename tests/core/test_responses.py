"""Tests for repro.core.responses (Definition 1, Algorithm 3 inputs)."""

import numpy as np
import pytest

from repro.core import StrategyProfile
from repro.core.profit import candidate_profits
from repro.core.responses import (
    best_response_set,
    best_update,
    better_responses,
    make_proposal,
)

from tests.helpers import random_game


class TestBetterResponses:
    def test_fig1_u3_prefers_shared_task(self, fig1_game):
        # Centralized optimal: u3 on r5 earning 1; r4 would earn 6/2 = 3.
        p = StrategyProfile(fig1_game, [0, 0, 1])
        assert better_responses(p, 2) == [0]

    def test_equilibrium_empty(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])
        for u in fig1_game.users:
            assert better_responses(p, u) == []

    def test_subset_relation(self, rng):
        for _ in range(20):
            g = random_game(rng)
            p = StrategyProfile.random(g, rng)
            for u in g.users:
                best = set(best_response_set(p, u))
                better = set(better_responses(p, u))
                assert best <= better

    def test_strictness(self, rng):
        # Every listed response strictly improves.
        for _ in range(20):
            g = random_game(rng)
            p = StrategyProfile.random(g, rng)
            for u in g.users:
                cp = candidate_profits(p, u)
                cur = cp[p.route_of(u)]
                for j in better_responses(p, u):
                    assert cp[j] > cur


class TestBestResponseSet:
    def test_contains_argmax(self, rng):
        for _ in range(20):
            g = random_game(rng)
            p = StrategyProfile.random(g, rng)
            for u in g.users:
                brs = best_response_set(p, u)
                if brs:
                    cp = candidate_profits(p, u)
                    assert cp[brs[0]] == pytest.approx(float(cp.max()))

    def test_empty_iff_at_best(self, rng):
        for _ in range(20):
            g = random_game(rng)
            p = StrategyProfile.random(g, rng)
            for u in g.users:
                cp = candidate_profits(p, u)
                at_best = cp[p.route_of(u)] >= float(cp.max()) - 1e-9
                assert (best_response_set(p, u) == []) == at_best


class TestBestUpdate:
    def test_none_at_equilibrium(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])
        for u in fig1_game.users:
            assert best_update(p, u) is None

    def test_proposal_fields(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 1])
        prop = best_update(p, 2)
        assert prop is not None
        assert prop.user == 2
        assert prop.new_route == 0
        assert prop.gain == pytest.approx(2.0)  # 3 - 1
        assert prop.tau == pytest.approx(2.0)  # alpha = 1
        assert prop.touched_tasks == {0, 2}  # task A and task C

    def test_delta_key(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 1])
        prop = best_update(p, 2)
        assert prop.delta == pytest.approx(prop.tau / 2)

    def test_random_pick_needs_rng(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 1])
        with pytest.raises(ValueError):
            best_update(p, 2, pick="random")

    def test_unknown_pick(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 1])
        with pytest.raises(ValueError):
            best_update(p, 2, pick="greedy")

    def test_gain_positive(self, rng):
        for _ in range(20):
            g = random_game(rng)
            p = StrategyProfile.random(g, rng)
            for u in g.users:
                prop = best_update(p, u)
                if prop is not None:
                    assert prop.gain > 0
                    assert prop.tau > 0


class TestMakeProposal:
    def test_touched_is_union(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])
        prop = make_proposal(p, 0, 1)  # u1: r1 (B) -> r2 (A)
        assert prop.touched_tasks == {0, 1}

    def test_zero_gain_for_noop(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])
        prop = make_proposal(p, 0, 0)
        assert prop.gain == pytest.approx(0.0)

    def test_empty_b_delta_uses_one(self):
        from repro.core import RouteNavigationGame

        g = RouteNavigationGame.from_coverage(
            [[[], []]],
            base_rewards=[10.0],
            detours=[[1.0, 0.0]],
        )
        p = StrategyProfile(g, [0])
        prop = make_proposal(p, 0, 1)
        assert prop.touched_tasks == frozenset()
        assert prop.delta == prop.tau  # |B| clamped to 1
