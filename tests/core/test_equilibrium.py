"""Tests for repro.core.equilibrium (Definition 2)."""

import pytest

from repro.core import StrategyProfile, is_nash_equilibrium
from repro.core.equilibrium import (
    deviation_report,
    epsilon_nash_gap,
    improving_users,
)

from tests.helpers import random_game


class TestIsNash:
    def test_fig1_equilibrium(self, fig1_game):
        assert is_nash_equilibrium(StrategyProfile(fig1_game, [0, 0, 0]))

    def test_fig1_optimal_not_equilibrium(self, fig1_game):
        # The centralized optimum is not a NE (u3 wants to deviate).
        assert not is_nash_equilibrium(StrategyProfile(fig1_game, [0, 0, 1]))

    def test_fig1_greedy_is_equilibrium(self, fig1_game):
        # All three on task A: each earns 2; u1's alternative is... r1 = 5!
        p = StrategyProfile(fig1_game, [1, 0, 0])
        assert not is_nash_equilibrium(p)  # u1 deviates to r1


class TestGap:
    def test_zero_at_equilibrium(self, fig1_game):
        assert epsilon_nash_gap(StrategyProfile(fig1_game, [0, 0, 0])) == pytest.approx(0.0)

    def test_gap_value(self, fig1_game):
        # u3 at r5 earns 1, can earn 3 -> gap 2; u1 fine; u2 single-route.
        p = StrategyProfile(fig1_game, [0, 0, 1])
        assert epsilon_nash_gap(p) == pytest.approx(2.0)

    def test_gap_nonnegative(self, rng):
        for _ in range(20):
            g = random_game(rng)
            p = StrategyProfile.random(g, rng)
            assert epsilon_nash_gap(p) >= 0.0


class TestImprovingUsers:
    def test_lists_deviators(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 1])
        assert improving_users(p) == [2]

    def test_empty_at_equilibrium(self, fig1_game):
        assert improving_users(StrategyProfile(fig1_game, [0, 0, 0])) == []

    def test_consistent_with_gap(self, rng):
        for _ in range(20):
            g = random_game(rng)
            p = StrategyProfile.random(g, rng)
            assert (improving_users(p) == []) == (
                epsilon_nash_gap(p) <= 1e-9
            )


class TestDeviationReport:
    def test_sorted_by_gain(self, rng):
        for _ in range(10):
            g = random_game(rng)
            p = StrategyProfile.random(g, rng)
            report = deviation_report(p)
            gains = [gain for _, _, gain in report]
            assert gains == sorted(gains, reverse=True)
            assert all(gain > 0 for gain in gains)

    def test_fig1(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 1])
        report = deviation_report(p)
        assert report == [(2, 0, pytest.approx(2.0))]
