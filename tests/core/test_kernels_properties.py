"""Property tests: vectorized CSR kernels vs. retained scalar references.

The refactored hot paths (:func:`repro.core.profit.candidate_profits`,
:func:`repro.core.potential.potential_delta`,
:func:`repro.core.profit.all_profits`, profile recounts) must agree with
the pre-refactor scalar implementations kept in
:mod:`repro.core.reference` on arbitrary instances — including routes with
empty coverage and single-task games — and must satisfy the weighted
potential identity of Eq. 11 exactly (up to float tolerance).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    PlatformWeights,
    RouteNavigationGame,
    StrategyProfile,
    UserWeights,
)
from repro.core.backend import available_backends, use_backend
from repro.core.potential import potential_delta
from repro.core.profit import all_profits, candidate_profits
from repro.core.reference import (
    all_profits_reference,
    candidate_profits_reference,
    potential_delta_reference,
    recount_reference,
)

from tests.helpers import games


@st.composite
def game_and_profile(draw):
    game = draw(games())
    choices = [
        draw(st.integers(0, game.num_routes(i) - 1)) for i in game.users
    ]
    return game, StrategyProfile(game, choices)


# Every installed kernel backend must hold the scalar-oracle parity below
# (the declared per-backend rtol is well inside these atol bounds).
# Parametrize (not a fixture) so hypothesis's function-scoped-fixture
# health check stays quiet.
@pytest.mark.parametrize("backend_name", available_backends())
class TestVectorizedVsScalar:
    @given(game_and_profile())
    @settings(max_examples=60, deadline=None)
    def test_candidate_profits_match_reference(self, backend_name, gp):
        game, profile = gp
        with use_backend(backend_name):
            for u in game.users:
                np.testing.assert_allclose(
                    candidate_profits(profile, u),
                    candidate_profits_reference(profile, u),
                    rtol=0,
                    atol=1e-10,
                )

    @given(game_and_profile())
    @settings(max_examples=60, deadline=None)
    def test_potential_delta_matches_reference(self, backend_name, gp):
        game, profile = gp
        with use_backend(backend_name):
            for u in game.users:
                for j in range(game.num_routes(u)):
                    assert potential_delta(profile, u, j) == pytest.approx(
                        potential_delta_reference(profile, u, j), abs=1e-10
                    )

    @given(game_and_profile())
    @settings(max_examples=60, deadline=None)
    def test_all_profits_match_reference(self, backend_name, gp):
        _, profile = gp
        with use_backend(backend_name):
            np.testing.assert_allclose(
                all_profits(profile), all_profits_reference(profile),
                rtol=0, atol=1e-10,
            )

    @given(game_and_profile())
    @settings(max_examples=40, deadline=None)
    def test_recount_matches_reference(self, backend_name, gp):
        _, profile = gp
        with use_backend(backend_name):
            assert np.array_equal(
                profile._recount(), recount_reference(profile)
            )

    @given(game_and_profile())
    @settings(max_examples=40, deadline=None)
    def test_eq11_identity_on_vectorized_kernels(self, backend_name, gp):
        # P_i(s') - P_i(s) = alpha_i * (phi(s') - phi(s)) for unilateral
        # moves (Eq. 11) — both sides computed by the CSR kernels.
        game, profile = gp
        with use_backend(backend_name):
            for u in game.users:
                cp = candidate_profits(profile, u)
                cur = cp[profile.route_of(u)]
                alpha = game.user_weights[u].alpha
                for j in range(game.num_routes(u)):
                    assert cp[j] - cur == pytest.approx(
                        alpha * potential_delta(profile, u, j), abs=1e-7
                    )


class TestEdgeShapes:
    """Deterministic corners the random generator rarely hits."""

    def _empty_heavy_game(self) -> RouteNavigationGame:
        # Every user has at least one empty-coverage route; one route is a
        # pure cost trade-off.
        return RouteNavigationGame.from_coverage(
            [
                [[], [0]],
                [[0], [], []],
                [[], []],
            ],
            base_rewards=[15.0],
            reward_increments=0.7,
            detours=[[0.5, 2.0], [1.0, 0.0, 4.0], [0.1, 0.2]],
            congestions=[[1.0, 0.0], [0.0, 2.0, 1.0], [3.0, 0.0]],
            user_weights=[UserWeights(0.8, 0.3, 0.4)] * 3,
            platform=PlatformWeights(0.6, 0.4),
        )

    def test_single_task_game_with_empty_routes(self):
        game = self._empty_heavy_game()
        for choices in [(0, 0, 0), (1, 0, 1), (0, 1, 0), (1, 2, 1)]:
            profile = StrategyProfile(game, list(choices))
            np.testing.assert_allclose(
                all_profits(profile), all_profits_reference(profile),
                rtol=0, atol=1e-12,
            )
            for u in game.users:
                np.testing.assert_allclose(
                    candidate_profits(profile, u),
                    candidate_profits_reference(profile, u),
                    rtol=0, atol=1e-12,
                )
                for j in range(game.num_routes(u)):
                    assert potential_delta(profile, u, j) == pytest.approx(
                        potential_delta_reference(profile, u, j), abs=1e-12
                    )

    def test_all_empty_coverage(self):
        game = RouteNavigationGame.from_coverage(
            [[[], []], [[]]],
            base_rewards=[10.0],
            detours=[[1.0, 2.0], [0.5]],
            congestions=[[0.0, 1.0], [2.0]],
        )
        profile = StrategyProfile(game, [0, 0])
        assert profile.counts.tolist() == [0]
        np.testing.assert_allclose(
            all_profits(profile), all_profits_reference(profile)
        )
        cp = candidate_profits(profile, 0)
        np.testing.assert_allclose(cp, candidate_profits_reference(profile, 0))
        assert potential_delta(profile, 0, 1) == pytest.approx(
            potential_delta_reference(profile, 0, 1)
        )

    def test_move_then_kernels_stay_consistent(self):
        game = self._empty_heavy_game()
        profile = StrategyProfile(game, [0, 0, 0])
        profile.move(1, 2)
        profile.move(0, 1)
        profile.validate()
        np.testing.assert_allclose(
            all_profits(profile), all_profits_reference(profile)
        )
