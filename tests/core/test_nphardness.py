"""Tests for repro.core.nphardness (Theorem 1 reduction)."""

import pytest

from repro.algorithms import CORN, exhaustive_optimum
from repro.core import StrategyProfile
from repro.core.nphardness import (
    SetCoverInstance,
    covered_elements,
    game_from_set_cover,
    greedy_set_cover_value,
)
from repro.core.profit import total_profit


@pytest.fixture
def instance():
    # 6 elements; subsets engineered so greedy is suboptimal with h = 2:
    # greedy picks {0,1,2} first, then one of the 2-element leftovers.
    return SetCoverInstance(
        n_elements=6,
        subsets=((0, 1, 2), (0, 3, 4), (1, 2, 5)),
        h=2,
    )


class TestInstance:
    def test_validation(self):
        with pytest.raises(ValueError):
            SetCoverInstance(0, ((0,),), 1)
        with pytest.raises(ValueError):
            SetCoverInstance(2, ((5,),), 1)

    def test_covered(self, instance):
        assert instance.covered([0, 1]) == {0, 1, 2, 3, 4}


class TestReduction:
    def test_profit_equals_base_times_coverage(self, instance):
        game = game_from_set_cover(instance, base_reward=2.5)
        for profile in StrategyProfile.all_profiles(game):
            covered = covered_elements(instance, profile)
            assert total_profit(profile) == pytest.approx(2.5 * covered)

    def test_optimum_solves_max_cover(self, instance):
        game = game_from_set_cover(instance)
        _, opt_value = exhaustive_optimum(game)
        # Optimal cover: subsets 1 and 2 cover {0,1,2,3,4,5} = 6 elements.
        assert opt_value == pytest.approx(6.0)

    def test_corn_agrees(self, instance):
        game = game_from_set_cover(instance)
        res = CORN(seed=0).run(game)
        assert res.total_profit == pytest.approx(6.0)

    def test_game_shape(self, instance):
        game = game_from_set_cover(instance)
        assert game.num_users == instance.h
        for i in game.users:
            assert game.num_routes(i) == len(instance.subsets)


class TestGreedy:
    def test_greedy_value(self, instance):
        # Greedy picks subset 0 (3 elements), then best marginal = 2 -> 5.
        assert greedy_set_cover_value(instance) == 5

    def test_greedy_within_factor(self, instance):
        game = game_from_set_cover(instance)
        _, opt = exhaustive_optimum(game)
        greedy = greedy_set_cover_value(instance)
        assert greedy >= (1 - 1 / 2.718281828) * opt - 1e-9

    def test_greedy_handles_h_larger_than_subsets(self):
        inst = SetCoverInstance(3, ((0,), (1,)), h=5)
        assert greedy_set_cover_value(inst) == 2
