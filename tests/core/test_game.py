"""Tests for repro.core.game."""

import numpy as np
import pytest

from repro.core import PlatformWeights, RouteNavigationGame, UserWeights


class TestFromCoverage:
    def test_sizes(self, fig1_game):
        assert fig1_game.num_users == 3
        assert fig1_game.num_tasks == 3
        assert fig1_game.num_routes(0) == 2
        assert fig1_game.num_routes(1) == 1

    def test_covered_tasks(self, fig1_game):
        assert list(fig1_game.covered_tasks(0, 0)) == [1]
        assert list(fig1_game.covered_tasks(2, 1)) == [2]

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            RouteNavigationGame.from_coverage([[[0, 0]]], base_rewards=[10.0])

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            RouteNavigationGame.from_coverage([[[5]]], base_rewards=[10.0])

    def test_empty_route_set_rejected(self):
        with pytest.raises(ValueError, match="empty route set"):
            RouteNavigationGame.from_coverage([[]], base_rewards=[10.0])

    def test_no_users_rejected(self):
        with pytest.raises(ValueError):
            RouteNavigationGame.from_coverage([], base_rewards=[10.0])


class TestDerivedCosts:
    def make(self):
        return RouteNavigationGame.from_coverage(
            [[[0], []]],
            base_rewards=[10.0],
            detours=[[2.0, 4.0]],
            congestions=[[1.0, 3.0]],
            user_weights=[UserWeights(0.5, 0.4, 0.3)],
            platform=PlatformWeights(0.5, 0.2),
        )

    def test_detour_cost(self):
        g = self.make()
        assert g.detour_cost(0, 0) == pytest.approx(0.5 * 2.0)
        assert g.detour_cost(0, 1) == pytest.approx(0.5 * 4.0)

    def test_congestion_cost(self):
        g = self.make()
        assert g.congestion_cost(0, 1) == pytest.approx(0.2 * 3.0)

    def test_route_cost_combines(self):
        g = self.make()
        expected = 0.4 * (0.5 * 2.0) + 0.3 * (0.2 * 1.0)
        assert g.route_cost[0][0] == pytest.approx(expected)

    def test_pot_cost_divides_alpha(self):
        g = self.make()
        assert g.route_pot_cost[0][0] == pytest.approx(g.route_cost[0][0] / 0.5)

    def test_raw_views(self):
        g = self.make()
        assert g.detour_h(0, 1) == pytest.approx(4.0)
        assert g.congestion_level(0, 0) == pytest.approx(1.0)


class TestDetourUnit:
    def test_unit_scales_h(self):
        g = RouteNavigationGame.from_coverage(
            [[[0]]], base_rewards=[10.0], detours=[[2.0]],
        )
        g2 = RouteNavigationGame(
            g.tasks, g.route_sets, g.user_weights, g.platform, detour_unit_km=0.5
        )
        assert g2.detour_h(0, 0) == pytest.approx(4.0)

    def test_invalid_unit(self):
        g = RouteNavigationGame.from_coverage([[[0]]], base_rewards=[10.0])
        with pytest.raises(ValueError):
            RouteNavigationGame(
                g.tasks, g.route_sets, g.user_weights, g.platform, detour_unit_km=0.0
            )


class TestRebuilds:
    def test_with_platform(self, fig1_game):
        g2 = fig1_game.with_platform(PlatformWeights(0.3, 0.3))
        assert g2.platform.phi == 0.3
        assert fig1_game.platform.phi == 0.0  # original unchanged
        assert g2.num_users == fig1_game.num_users

    def test_with_user_weights(self, fig1_game):
        new = UserWeights(0.9, 0.1, 0.1)
        g2 = fig1_game.with_user_weights(1, new)
        assert g2.user_weights[1] == new
        assert g2.user_weights[0] == fig1_game.user_weights[0]

    def test_with_platform_keeps_detour_unit(self):
        g = RouteNavigationGame.from_coverage(
            [[[0]]], base_rewards=[10.0], detours=[[2.0]],
        )
        g = RouteNavigationGame(
            g.tasks, g.route_sets, g.user_weights, g.platform, detour_unit_km=0.5
        )
        g2 = g.with_platform(PlatformWeights(0.4, 0.4))
        assert g2.detour_unit_km == 0.5


class TestScenarioGame:
    def test_scenario_game_valid(self, shanghai_game):
        g = shanghai_game
        assert g.num_users == 15
        assert g.num_tasks == 40
        for i in g.users:
            assert 1 <= g.num_routes(i) <= 5
            assert np.all(g.route_detour[i] >= 0)
            assert np.all(g.route_congestion[i] >= 0)
