"""Unit tests for the compiled flat CSR layout (:mod:`repro.core.arrays`)."""

import numpy as np
import pytest

from repro.core import PlatformWeights, RouteNavigationGame, StrategyProfile
from repro.core.arrays import gather_segments, segment_sums

from tests.helpers import random_game


def _simple_game() -> RouteNavigationGame:
    return RouteNavigationGame.from_coverage(
        [
            [[0, 2], [1]],        # user 0
            [[2, 1, 0], [], [0]], # user 1 (one empty-coverage route)
        ],
        base_rewards=[10.0, 12.0, 14.0],
        reward_increments=0.3,
        detours=[[1.0, 2.0], [0.5, 0.0, 3.0]],
        congestions=[[0.0, 1.0], [2.0, 0.0, 1.0]],
        platform=PlatformWeights(0.5, 0.5),
    )


class TestLayout:
    def test_csr_shapes_and_offsets(self):
        ga = _simple_game().arrays
        assert ga.num_users == 2
        assert ga.num_tasks == 3
        assert ga.num_routes_total == 5
        assert ga.user_route_offset.tolist() == [0, 2, 5]
        assert ga.indptr.tolist() == [0, 2, 3, 6, 6, 7]
        assert ga.task_ids.tolist() == [0, 2, 1, 2, 1, 0, 0]
        assert ga.route_len.tolist() == [2, 1, 3, 0, 1]
        assert ga.route_user.tolist() == [0, 0, 1, 1, 1]

    def test_sorted_segments_preserve_membership(self):
        ga = _simple_game().arrays
        for g in range(ga.num_routes_total):
            srt = ga.route_tasks_sorted(g)
            assert np.array_equal(np.sort(ga.route_tasks(g)), srt)
            assert np.all(np.diff(srt) > 0)  # strictly sorted, no duplicates

    def test_legacy_accessors_are_views_into_flat_arrays(self):
        game = _simple_game()
        ga = game.arrays
        # covered_tasks and route_cost share memory with the flat layout —
        # one source of truth, not copies.
        view = game.covered_tasks(1, 0)
        assert view.base is ga.task_ids or view.base is ga.task_ids.base
        assert np.shares_memory(view, ga.task_ids)
        assert np.shares_memory(game.route_cost[0], ga.route_cost)
        assert np.shares_memory(game.route_detour[1], ga.route_detour)

    def test_route_id_round_trip(self):
        game = _simple_game()
        ga = game.arrays
        for i in game.users:
            for j in range(game.num_routes(i)):
                g = ga.route_id(i, j)
                assert np.array_equal(
                    ga.route_tasks(g), game.covered_tasks(i, j)
                )


class TestSegmentPrimitives:
    def test_gather_segments_with_empties(self):
        data = np.arange(10)
        starts = np.array([0, 3, 3, 7])
        lengths = np.array([3, 0, 4, 3])
        out = gather_segments(data, starts, lengths)
        assert out.tolist() == [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]

    def test_segment_sums_empty_segment_is_exact_zero(self):
        values = np.array([1.0, 2.0, 4.0])
        starts = np.array([0, 2, 2, 3])
        lengths = np.array([2, 0, 1, 0])
        out = segment_sums(values, starts, lengths)
        assert out.tolist() == [3.0, 0.0, 4.0, 0.0]

    def test_segment_sums_all_empty(self):
        out = segment_sums(np.zeros(0), np.zeros(3, dtype=int), np.zeros(3, dtype=int))
        assert out.tolist() == [0.0, 0.0, 0.0]

    def test_middle_empty_does_not_corrupt_neighbours(self):
        # Regression: a clipped empty-segment offset must not truncate the
        # preceding segment's reduction range.
        values = np.array([1.0, 1.0, 1.0, 5.0])
        starts = np.array([0, 4, 4])
        lengths = np.array([4, 0, 0])
        assert segment_sums(values, starts, lengths).tolist() == [8.0, 0.0, 0.0]


class TestDerivedCsrs:
    def test_task_user_csr_matches_bruteforce(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            game = random_game(rng)
            ga = game.arrays
            indptr, users = ga.task_user_csr()
            for k in range(game.num_tasks):
                expect = sorted(
                    {
                        i
                        for i in game.users
                        for j in range(game.num_routes(i))
                        if k in game.covered_tasks(i, j)
                    }
                )
                got = users[indptr[k] : indptr[k + 1]].tolist()
                assert got == expect

    def test_user_task_csr_matches_bruteforce(self):
        rng = np.random.default_rng(8)
        for _ in range(20):
            game = random_game(rng)
            ga = game.arrays
            indptr, tasks = ga.user_task_csr()
            for i in game.users:
                expect = sorted(
                    {
                        int(t)
                        for j in range(game.num_routes(i))
                        for t in game.covered_tasks(i, j)
                    }
                )
                assert tasks[indptr[i] : indptr[i + 1]].tolist() == expect

    def test_counts_from_choices_matches_recount(self):
        rng = np.random.default_rng(9)
        for _ in range(20):
            game = random_game(rng)
            profile = StrategyProfile.random(game, rng)
            from repro.core.reference import recount_reference

            assert np.array_equal(
                game.arrays.counts_from_choices(profile.choices),
                recount_reference(profile),
            )

    def test_coverage_matrix_matches_segments(self):
        game = _simple_game()
        ga = game.arrays
        cov = ga.user_coverage_matrix(1)
        assert cov.shape == (3, 3)
        assert cov[0].tolist() == [1.0, 1.0, 1.0]
        assert cov[1].tolist() == [0.0, 0.0, 0.0]
        assert cov[2].tolist() == [1.0, 0.0, 0.0]


class TestValidationStillExact:
    def test_duplicate_ids_rejected_with_route_location(self):
        with pytest.raises(ValueError, match=r"route \(1,0\) has duplicate"):
            RouteNavigationGame.from_coverage(
                [[[0]], [[1, 1]]], base_rewards=[5.0, 5.0]
            )

    def test_unknown_ids_rejected_with_route_location(self):
        with pytest.raises(ValueError, match=r"route \(0,1\) references unknown"):
            RouteNavigationGame.from_coverage(
                [[[0], [7]], [[1]]], base_rewards=[5.0, 5.0]
            )
