"""Tests for exhaustive equilibrium enumeration and exact PoA (Eq. 21)."""

import pytest

from repro.algorithms import BATS, BRUN, BUAU, DGRN, MUUN
from repro.core import enumerate_equilibria
from repro.core.poa import poa_lower_bound

from tests.helpers import random_game


class TestFig1Analysis:
    def test_unique_equilibrium(self, fig1_game):
        analysis = enumerate_equilibria(fig1_game)
        assert analysis.num_equilibria == 1
        assert analysis.equilibria[0] == (0, 0, 0)
        assert analysis.equilibrium_profits[0] == pytest.approx(11.0)

    def test_optimum(self, fig1_game):
        analysis = enumerate_equilibria(fig1_game)
        assert analysis.optimal_choices == (0, 0, 1)
        assert analysis.optimal_profit == pytest.approx(12.0)

    def test_exact_poa(self, fig1_game):
        analysis = enumerate_equilibria(fig1_game)
        assert analysis.price_of_anarchy == pytest.approx(11.0 / 12.0)
        assert analysis.price_of_stability == pytest.approx(11.0 / 12.0)


class TestFig2Analysis:
    def test_split_regime_has_two_symmetric_equilibria(self, fig2_game):
        analysis = enumerate_equilibria(fig2_game(0.1, 0.1))
        assert set(analysis.equilibria) == {(0, 1), (1, 0)}

    def test_pile_on_regimes_unique(self, fig2_game):
        for phi, theta, expected in [(0.9, 0.1, (0, 0)), (0.1, 0.9, (1, 1))]:
            analysis = enumerate_equilibria(fig2_game(phi, theta))
            assert analysis.equilibria == (expected,)


class TestBatchMatchesScalar:
    def test_identical_analysis(self, rng):
        from repro.core.enumeration import enumerate_equilibria_slow

        for _ in range(15):
            g = random_game(rng, max_users=4, max_routes=3, max_tasks=6)
            fast = enumerate_equilibria(g)
            slow = enumerate_equilibria_slow(g)
            assert fast.equilibria == slow.equilibria
            assert fast.optimal_choices == slow.optimal_choices
            assert fast.optimal_profit == pytest.approx(slow.optimal_profit)
            for a, b in zip(fast.equilibrium_profits, slow.equilibrium_profits):
                assert a == pytest.approx(b, abs=1e-9)

    def test_medium_game_fast(self, rng):
        # 7 users x 3 routes = 2187 profiles; the batch path is instant.
        g = random_game(rng, max_users=7, max_routes=3, max_tasks=8)
        analysis = enumerate_equilibria(g)
        assert analysis.num_equilibria >= 1


class TestRandomGames:
    def test_at_least_one_equilibrium(self, rng):
        # Theorem 2: potential games always have a Nash equilibrium.
        for _ in range(25):
            g = random_game(rng, max_users=4, max_routes=3, max_tasks=6)
            analysis = enumerate_equilibria(g)
            assert analysis.num_equilibria >= 1

    def test_poa_in_unit_interval(self, rng):
        for _ in range(15):
            g = random_game(rng, max_users=4)
            analysis = enumerate_equilibria(g)
            if analysis.optimal_profit > 0:
                assert 0.0 < analysis.price_of_anarchy <= 1.0 + 1e-9
                assert analysis.price_of_anarchy <= analysis.price_of_stability + 1e-12

    def test_dynamics_land_in_the_enumerated_set(self, rng):
        for trial in range(8):
            g = random_game(rng, max_users=4)
            equilibria = set(enumerate_equilibria(g).equilibria)
            for algo_cls in (DGRN, MUUN, BRUN, BUAU, BATS):
                result = algo_cls(seed=trial).run(g)
                assert tuple(int(c) for c in result.profile.choices) in equilibria

    def test_heuristic_bound_below_exact_poa(self, rng):
        # The Table 4 bound must never exceed the exact PoA.
        checked = 0
        for _ in range(20):
            g = random_game(rng, max_users=4)
            analysis = enumerate_equilibria(g)
            if analysis.optimal_profit <= 0:
                continue
            checked += 1
            assert poa_lower_bound(g) <= analysis.price_of_anarchy + 1e-9
        assert checked >= 5
