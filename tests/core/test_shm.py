"""Buffer-table protocol and shared-memory transport (repro.core.shm)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.arrays import GameArrays
from repro.core.shm import (
    ALIGN,
    BufferTable,
    SharedBlock,
    active_segments,
    compact_ints,
    os_segments,
)
from repro.core.game import RouteNavigationGame
from tests.helpers import random_game


# ------------------------------------------------------------- strategies
_DTYPES = st.sampled_from(
    ["<i8", "<i4", "<f8", "<f4", "<u2", "|i1", "<f2"]
)


@st.composite
def named_arrays(draw):
    """A mapping of named ndarrays with mixed dtypes, shapes, and emptiness."""
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    n = draw(st.integers(1, 6))
    out = {}
    for i in range(n):
        dtype = np.dtype(draw(_DTYPES))
        # Deliberately include empty and scalar-ish shapes.
        shape = tuple(draw(st.lists(st.integers(0, 5), min_size=1, max_size=2)))
        if dtype.kind == "f":
            arr = rng.standard_normal(shape).astype(dtype)
        else:
            info = np.iinfo(dtype)
            arr = rng.integers(
                max(info.min, -1000), min(info.max, 1000), size=shape
            ).astype(dtype)
        out[f"buf{i}"] = arr
    return out


class TestBufferTable:
    @given(named_arrays())
    @settings(max_examples=60, deadline=None)
    def test_pack_views_roundtrip_bitwise(self, named):
        """pack_into → views is bitwise identity for every dtype mix."""
        table = BufferTable.build(named)
        buf = bytearray(table.total_bytes)
        table.pack_into(buf, named)
        views = table.views(buf)
        assert set(views) == set(named)
        for name, arr in named.items():
            v = views[name]
            assert v.dtype == arr.dtype
            assert v.shape == arr.shape
            assert v.tobytes() == np.ascontiguousarray(arr).tobytes()

    @given(named_arrays())
    @settings(max_examples=60, deadline=None)
    def test_offsets_aligned_and_disjoint(self, named):
        table = BufferTable.build(named)
        end = 0
        for spec in table:
            assert spec.offset % ALIGN == 0
            assert spec.offset >= end
            end = spec.offset + spec.nbytes
        assert table.total_bytes >= end

    def test_views_read_only_by_default(self):
        named = {"a": np.arange(8, dtype=np.int64)}
        table = BufferTable.build(named)
        buf = bytearray(table.total_bytes)
        table.pack_into(buf, named)
        views = table.views(buf)
        with pytest.raises((ValueError, RuntimeError)):
            views["a"][0] = 99

    def test_empty_segment_has_zero_bytes(self):
        named = {"empty": np.zeros(0, dtype=np.float64),
                 "tail": np.arange(3, dtype=np.int64)}
        table = BufferTable.build(named)
        assert table.spec("empty").nbytes == 0
        buf = bytearray(table.total_bytes)
        table.pack_into(buf, named)
        views = table.views(buf)
        assert views["empty"].size == 0
        np.testing.assert_array_equal(views["tail"], [0, 1, 2])

    def test_shape_mismatch_rejected(self):
        table = BufferTable.build({"a": np.arange(4, dtype=np.int64)})
        buf = bytearray(table.total_bytes)
        with pytest.raises(Exception):
            table.pack_into(buf, {"a": np.arange(5, dtype=np.int64)})


class TestCompactInts:
    @given(
        st.lists(st.integers(-(2**40), 2**40), max_size=30),
        st.sampled_from([np.int64, np.intp]),
    )
    @settings(max_examples=80, deadline=None)
    def test_lossless_and_fresh(self, values, dtype):
        arr = np.asarray(values, dtype=dtype)
        wire = compact_ints(arr)
        np.testing.assert_array_equal(wire.astype(arr.dtype), arr)
        # Never aliases the input: snapshots must not share live state.
        assert not np.shares_memory(wire, arr)

    def test_downcasts_small_values(self):
        assert compact_ints(np.arange(10, dtype=np.int64)).dtype == np.int32

    def test_keeps_wide_values(self):
        arr = np.asarray([2**40], dtype=np.int64)
        assert compact_ints(arr).dtype == np.int64

    def test_float_passthrough_is_copy(self):
        arr = np.asarray([1.5, 2.5])
        out = compact_ints(arr)
        assert out.dtype == arr.dtype
        assert not np.shares_memory(out, arr)


class TestSharedBlock:
    def test_create_write_attach_read(self):
        block = SharedBlock.create(256)
        try:
            view = np.frombuffer(block.buf, dtype=np.uint8, count=4)
            with np.errstate(all="ignore"):
                block.buf[:4] = b"\x01\x02\x03\x04"
            other = SharedBlock.attach(block.name)
            got = bytes(other.buf[:4])
            del view
            other.close()
            assert got == b"\x01\x02\x03\x04"
        finally:
            block.close()

    def test_close_is_idempotent_and_unlinks(self):
        block = SharedBlock.create(64)
        name = block.name
        assert name in active_segments()
        block.close()
        block.close()
        assert block.closed
        assert name not in active_segments()
        assert name not in os_segments()
        with pytest.raises(FileNotFoundError):
            SharedBlock.attach(name)

    def test_gc_reclaims_segment(self):
        name = SharedBlock.create(64).name  # dropped immediately
        import gc

        gc.collect()
        assert name not in active_segments()
        assert name not in os_segments()

    def test_close_survives_live_numpy_views(self):
        """Views pin the mapping; close still unlinks the OS name."""
        block = SharedBlock.create(128)
        name = block.name
        view = np.frombuffer(block.buf, dtype=np.uint8)
        block.close()
        assert name not in os_segments()
        assert view.size == 128  # mapping stays valid while the view lives


class TestGameArraysSharedRoundTrip:
    def _game(self, seed: int) -> RouteNavigationGame:
        return random_game(
            np.random.default_rng(seed), max_users=12, max_routes=4,
            max_tasks=14,
        )

    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_to_shared_from_shared_bitwise(self, seed):
        ga = self._game(seed).arrays
        block, table = ga.to_shared()
        try:
            back = GameArrays.from_shared(block.name, table)
            for field in GameArrays.BUFFER_FIELDS:
                a = getattr(ga, field)
                b = getattr(back, field)
                assert a.dtype == b.dtype, field
                assert a.tobytes() == b.tobytes(), field
            assert back.num_users == ga.num_users
            assert back.num_tasks == ga.num_tasks
            assert back.num_routes_total == ga.num_routes_total
        finally:
            block.close()

    def test_shared_views_are_zero_copy_and_read_only(self):
        ga = self._game(3).arrays
        block, table = ga.to_shared()
        try:
            back = GameArrays.from_shared(block.name, table)
            assert not back.route_cost.flags.writeable
            # The view lives inside the shared mapping, not an owned copy.
            assert not back.route_cost.flags.owndata
            assert back.route_cost.base is not None
        finally:
            block.close()

    def test_pickle_roundtrip_unchanged(self):
        """__getstate__/__setstate__ still work (legacy transport)."""
        import pickle

        ga = self._game(5).arrays
        back = pickle.loads(pickle.dumps(ga))
        for field in GameArrays.BUFFER_FIELDS:
            assert getattr(ga, field).tobytes() == getattr(back, field).tobytes()
