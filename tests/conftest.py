"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PlatformWeights, RouteNavigationGame, UserWeights
from repro.scenario import ScenarioConfig, build_scenario


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def fig1_game() -> RouteNavigationGame:
    """The paper's Fig. 1 example.

    Tasks: A (reward 6, shared via r2/r3/r4), B (reward 5, only r1),
    C (reward 1, only r5).  Users: u1 in {r1:[B], r2:[A]},
    u2 in {r3:[A]}, u3 in {r4:[A], r5:[C]}.  No costs, mu = 0, alpha = 1.
    """
    return RouteNavigationGame.from_coverage(
        [
            [[1], [0]],  # u1: r1 covers B, r2 covers A
            [[0]],  # u2: r3 covers A
            [[0], [2]],  # u3: r4 covers A, r5 covers C
        ],
        base_rewards=[6.0, 5.0, 1.0],  # A, B, C
        reward_increments=0.0,
        platform=PlatformWeights(0.0, 0.0),
    )


@pytest.fixture
def fig2_game() -> RouteNavigationGame:
    """The paper's Fig. 2 example (with the profit's cost terms subtracted).

    Two users share the route catalogue {r1: h=0, c=3; r2: h=2, c=1}; each
    route covers its own task of reward 3.  The platform weights phi/theta
    are swept by the tests.
    """

    def build(phi: float, theta: float) -> RouteNavigationGame:
        return RouteNavigationGame.from_coverage(
            [
                [[0], [1]],
                [[0], [1]],
            ],
            base_rewards=[3.0, 3.0],
            reward_increments=0.0,
            detours=[[0.0, 2.0], [0.0, 2.0]],
            congestions=[[3.0, 1.0], [3.0, 1.0]],
            user_weights=[UserWeights(1.0, 1.0, 1.0)] * 2,
            platform=PlatformWeights(phi, theta),
        )

    return build


@pytest.fixture(scope="session")
def shanghai_scenario():
    """One medium scenario shared across read-only tests (expensive build)."""
    return build_scenario(
        ScenarioConfig(city="shanghai", n_users=15, n_tasks=40, seed=2024)
    )


@pytest.fixture(scope="session")
def shanghai_game(shanghai_scenario):
    return shanghai_scenario.game
