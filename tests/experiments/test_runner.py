"""Tests for the repetition executor."""

import os

import pytest

from repro.experiments.runner import default_processes, repeat_map


def _double(spec):
    return [{"spec": spec, "twice": spec * 2}]


def _multi_row(spec):
    return [{"spec": spec, "i": i} for i in range(3)]


class TestRepeatMap:
    def test_inline_order_preserved(self):
        table = repeat_map(_double, [3, 1, 2])
        assert [r["spec"] for r in table] == [3, 1, 2]

    def test_rows_flattened(self):
        table = repeat_map(_multi_row, [0, 1])
        assert len(table) == 6

    def test_empty_specs(self):
        assert len(repeat_map(_double, [])) == 0

    def test_processes_one_runs_inline(self):
        table = repeat_map(_double, [5], processes=1)
        assert table[0]["twice"] == 10

    @pytest.mark.skipif(os.cpu_count() is None or os.cpu_count() < 2,
                        reason="needs >= 2 cores")
    def test_process_pool_matches_inline(self):
        inline = repeat_map(_double, list(range(8)))
        pooled = repeat_map(_double, list(range(8)), processes=2)
        assert inline.rows == pooled.rows


class TestDefaultProcesses:
    def test_at_least_one(self):
        assert default_processes() >= 1
