"""Tests for the repetition executor."""

import os

import pytest

import repro.obs as obs
from repro.experiments.runner import default_processes, repeat_map


def _double(spec):
    return [{"spec": spec, "twice": spec * 2}]


def _multi_row(spec):
    return [{"spec": spec, "i": i} for i in range(3)]


def _counting(spec):
    # Worker that records telemetry of its own (merged back by the pool).
    obs.counter("test.worker_calls").inc()
    return [{"spec": spec}]


class TestRepeatMap:
    def test_inline_order_preserved(self):
        table = repeat_map(_double, [3, 1, 2])
        assert [r["spec"] for r in table] == [3, 1, 2]

    def test_rows_flattened(self):
        table = repeat_map(_multi_row, [0, 1])
        assert len(table) == 6

    def test_empty_specs(self):
        assert len(repeat_map(_double, [])) == 0

    def test_processes_one_runs_inline(self):
        table = repeat_map(_double, [5], processes=1)
        assert table[0]["twice"] == 10

    @pytest.mark.skipif(os.cpu_count() is None or os.cpu_count() < 2,
                        reason="needs >= 2 cores")
    def test_process_pool_matches_inline(self):
        inline = repeat_map(_double, list(range(8)))
        pooled = repeat_map(_double, list(range(8)), processes=2)
        assert inline.rows == pooled.rows


class TestDefaultProcesses:
    def test_at_least_one(self):
        assert default_processes() >= 1


class TestRunnerTelemetry:
    def test_disabled_records_nothing(self):
        obs.disable()
        obs.reset()
        repeat_map(_double, [1, 2, 3])
        assert obs.REGISTRY.snapshot().histograms == {}

    def test_inline_spec_durations(self):
        with obs.session():
            repeat_map(_double, [1, 2, 3])
            h = obs.histogram("runner.spec_seconds")
            assert h.count == 3
            assert len(h.values) == 3
            assert obs.counter("runner.specs_total").value == 3
            wall = obs.gauge("runner.wall_seconds").value
            assert wall >= h.sum > 0.0
            assert obs.gauge("runner.straggler_seconds").value == max(h.values)
            assert 0.0 < obs.gauge("runner.utilization").value <= 1.0

    @pytest.mark.skipif(os.cpu_count() is None or os.cpu_count() < 2,
                        reason="needs >= 2 cores")
    def test_pool_merges_worker_snapshots(self):
        with obs.session():
            table = repeat_map(_counting, list(range(4)), processes=2)
            assert len(table) == 4
            # Worker-side counters came back through the snapshot merge.
            assert obs.counter("test.worker_calls").value == 4
            h = obs.histogram("runner.spec_seconds")
            assert h.count == 4
            assert obs.gauge("runner.straggler_seconds").value == max(h.values)

    @pytest.mark.skipif(os.cpu_count() is None or os.cpu_count() < 2,
                        reason="needs >= 2 cores")
    def test_pool_rows_identical_with_telemetry(self):
        plain = repeat_map(_double, list(range(6)), processes=2)
        with obs.session():
            telemetered = repeat_map(_double, list(range(6)), processes=2)
        assert plain.rows == telemetered.rows
