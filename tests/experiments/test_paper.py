"""Tests for the one-command reproduction driver."""

from pathlib import Path

import pytest

from repro.experiments.paper import main, reproduce_paper


class TestReproducePaper:
    def test_subset_writes_outputs(self, tmp_path):
        summary = reproduce_paper(
            tmp_path, repetitions=1, seed=0, processes=None,
            keys=["table3", "fig14"],
        )
        assert summary.exists()
        text = summary.read_text()
        assert "table3" in text and "fig14" in text
        assert (tmp_path / "table3.csv").exists()
        assert (tmp_path / "table3.svg").exists()  # chartable artifact
        assert (tmp_path / "fig14.csv").exists()

    def test_fig13_writes_maps(self, tmp_path):
        reproduce_paper(tmp_path, repetitions=1, keys=["fig13"])
        assert (tmp_path / "fig13_shanghai.svg").exists()

    def test_cli(self, tmp_path, capsys):
        assert main([str(tmp_path), "--repetitions", "1",
                     "--keys", "table3"]) == 0
        assert "summary written" in capsys.readouterr().out

    def test_repetition_scale_keys_exist(self):
        from repro.experiments.paper import _REPETITION_SCALE
        from repro.experiments.registry import EXPERIMENTS

        assert set(_REPETITION_SCALE) <= set(EXPERIMENTS)
