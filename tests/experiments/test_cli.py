"""Tests for the repro-experiments CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig7"])
        assert args.experiment == "fig7"
        assert args.seed == 0
        assert args.repetitions is None

    def test_options(self):
        args = build_parser().parse_args(
            ["fig4", "--repetitions", "3", "--processes", "2", "--seed", "9"]
        )
        assert args.repetitions == 3 and args.processes == 2 and args.seed == 9


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table4" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig3" in capsys.readouterr().out

    def test_runs_tiny_experiment(self, capsys):
        assert main(["table3", "--repetitions", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "overlap_ratio_mean" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["fig99"])

    def test_csv_written(self, tmp_path, capsys):
        path = tmp_path / "out.csv"
        assert main(["table3", "--repetitions", "1", "--csv", str(path)]) == 0
        assert path.exists()
        assert path.read_text().startswith("n_tasks,")

    def test_svg_written(self, tmp_path, capsys):
        path = tmp_path / "out.svg"
        assert main(["table3", "--repetitions", "1", "--svg", str(path)]) == 0
        assert path.read_text().startswith("<svg")

    def test_svg_skipped_without_chart_spec(self, tmp_path, capsys):
        path = tmp_path / "out.svg"
        assert main(["fig13", "--svg", str(path)]) == 0
        assert "no chart spec" in capsys.readouterr().out
        assert not path.exists()
