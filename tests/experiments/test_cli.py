"""Tests for the repro-experiments CLI."""

import json

import pytest

import repro.obs as obs
from repro.experiments.cli import build_parser, main


@pytest.fixture(autouse=True)
def telemetry_off_after():
    yield
    obs.disable()
    obs.reset_logging()


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig7"])
        assert args.experiment == "fig7"
        assert args.seed == 0
        assert args.repetitions is None

    def test_options(self):
        args = build_parser().parse_args(
            ["fig4", "--repetitions", "3", "--processes", "2", "--seed", "9"]
        )
        assert args.repetitions == 3 and args.processes == 2 and args.seed == 9


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table4" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig3" in capsys.readouterr().out

    def test_runs_tiny_experiment(self, capsys):
        assert main(["table3", "--repetitions", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "overlap_ratio_mean" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["fig99"])

    def test_csv_written(self, tmp_path, capsys):
        path = tmp_path / "out.csv"
        assert main(["table3", "--repetitions", "1", "--csv", str(path)]) == 0
        assert path.exists()
        assert path.read_text().startswith("n_tasks,")

    def test_svg_written(self, tmp_path, capsys):
        path = tmp_path / "out.svg"
        assert main(["table3", "--repetitions", "1", "--svg", str(path)]) == 0
        assert path.read_text().startswith("<svg")

    def test_svg_skipped_without_chart_spec(self, tmp_path, capsys):
        path = tmp_path / "out.svg"
        assert main(["fig13", "--svg", str(path)]) == 0
        assert "no chart spec" in capsys.readouterr().out
        assert not path.exists()


class TestTelemetryFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.metrics_out is None and args.log_json is None
        assert args.log_level is None and args.trace is False

    def test_metrics_out_writes_run_report(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        assert main(["table3", "--repetitions", "1",
                     "--metrics-out", str(path)]) == 0
        report = json.loads(path.read_text())
        assert report["schema"] == "repro.run_report/v1"
        assert report["experiment"] == "table3"
        assert report["config"]["repetitions"] == 1
        assert report["wall_seconds"] > 0
        # Span table includes the per-spec and per-slot timings.
        paths = {s["path"] for s in report["spans"]}
        assert any(p.endswith("allocator.slot") for p in paths)
        # The traffic section is always present (empty for non-protocol
        # experiments); metric snapshot carries the full registry.
        assert set(report["message_traffic"]) == {
            "sent_by_type", "dropped_by_type", "delivered_by_type"}
        assert "allocator.slot_seconds" in report["metrics"]["histograms"]
        # Per-spec durations exist and sum close to the wall clock.
        runner = report["runner"]
        assert runner["specs"] == len(runner["spec_seconds"]) > 0
        assert runner["spec_seconds_sum"] <= report["wall_seconds"]
        assert runner["spec_seconds_sum"] > 0.5 * report["wall_seconds"]

    def test_trace_prints_hottest_spans(self, capsys):
        assert main(["table3", "--repetitions", "1", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "hottest spans" in out
        assert "allocator.run" in out

    def test_log_json_writes_events(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main(["table3", "--repetitions", "1",
                     "--log-json", str(path)]) == 0
        events = [json.loads(line) for line in path.read_text().splitlines()]
        names = {e["event"] for e in events}
        assert "runner.spec_done" in names
        assert "runner.run_done" in names

    def test_telemetry_disabled_by_default(self, capsys):
        assert main(["table3", "--repetitions", "1"]) == 0
        assert not obs.enabled()


class TestServeCommand:
    def test_parser_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.shards == 1 and args.churn_rate == 0.0
        assert args.duration == 20 and args.scheduler == "suu"

    def test_serve_session_runs(self, capsys):
        assert main([
            "serve", "--shards", "2", "--churn-rate", "1.0",
            "--duration", "3", "--users", "30", "--tasks", "20",
            "--validate",
        ]) == 0
        out = capsys.readouterr().out
        assert "K=2 shards" in out
        assert "is_nash             True" in out

    def test_serve_metrics_out(self, tmp_path, capsys):
        path = tmp_path / "serve.json"
        assert main([
            "serve", "--shards", "2", "--churn-rate", "1.0",
            "--duration", "3", "--users", "30", "--tasks", "20",
            "--metrics-out", str(path),
        ]) == 0
        report = json.loads(path.read_text())
        assert report["experiment"] == "serve"
        assert report["config"]["shards"] == 2
        assert report["config"]["is_nash"] is True
        assert "serve.rounds_total" in report["metrics"]["counters"]

    def test_fig19_registered(self, capsys):
        assert main(["--list"]) == 0
        assert "fig19" in capsys.readouterr().out

    def test_serve_health_out(self, tmp_path, capsys):
        path = tmp_path / "health.json"
        assert main([
            "serve", "--shards", "2", "--churn-rate", "1.0",
            "--duration", "3", "--users", "30", "--tasks", "20",
            "--health-out", str(path),
        ]) == 0
        report = json.loads(path.read_text())
        assert report["schema"] == "repro.health_report/v1"
        assert len(report["per_shard"]) == 2
        assert report["nash_residual"]["at_equilibrium"] is True
        out = capsys.readouterr().out
        assert "nash_residual" in out
        assert "health report" in out

    def test_serve_scrape_port_live_endpoint(self, capsys):
        import re
        import urllib.request
        from unittest.mock import patch

        from repro.obs.exporters import ScrapeServer

        probed: dict[str, str] = {}
        orig = ScrapeServer.start

        def start_and_probe(self):
            orig(self)
            with urllib.request.urlopen(self.url, timeout=5) as resp:
                probed["body"] = resp.read().decode("utf-8")
            return self

        with patch.object(ScrapeServer, "start", start_and_probe):
            assert main([
                "serve", "--duration", "2", "--users", "20", "--tasks", "15",
                "--scrape-port", "0",
            ]) == 0
        assert re.search(r"scrape endpoint live at http://127\.0\.0\.1:\d+",
                         capsys.readouterr().out)
        assert "body" in probed  # endpoint answered the scrape


class TestDashCommand:
    def _run_report(self, tmp_path):
        path = tmp_path / "run.json"
        assert main(["serve", "--shards", "2", "--duration", "2",
                     "--users", "30", "--tasks", "20",
                     "--metrics-out", str(path),
                     "--health-out", str(tmp_path / "health.json")]) == 0
        return path

    def test_dash_renders_html(self, tmp_path, capsys):
        report = self._run_report(tmp_path)
        out = tmp_path / "dash.html"
        assert main(["dash", str(report), "--out", str(out)]) == 0
        doc = out.read_text()
        assert doc.startswith("<!DOCTYPE html>")
        assert "serve.rounds" in doc or "Time series" in doc

    def test_dash_default_output_path(self, tmp_path, capsys):
        report = self._run_report(tmp_path)
        assert main(["dash", str(report)]) == 0
        assert (tmp_path / "run.html").exists()

    def test_dash_with_health_report(self, tmp_path, capsys):
        report = self._run_report(tmp_path)
        out = tmp_path / "dash.html"
        assert main(["dash", str(report), "--out", str(out),
                     "--health-report", str(tmp_path / "health.json")]) == 0
        doc = out.read_text()
        assert "<h2>Health</h2>" in doc
        assert "Nash residual" in doc

    def test_dash_without_target_errors(self, capsys):
        assert main(["dash"]) == 2
        assert "usage" in capsys.readouterr().err
