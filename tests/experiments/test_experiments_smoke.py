"""Smoke tests: every registered experiment runs at a tiny scale and its
output has the paper artifact's columns (and, where cheap to check, the
paper's qualitative shape)."""

import pytest

from repro.experiments import get_experiment, run_experiment
from repro.experiments.registry import EXPERIMENTS


class TestRegistry:
    def test_all_artifacts_present(self):
        # 13 paper artifacts (Figs 3-13, Tables 3-5) + 6 extensions.
        assert len(EXPERIMENTS) == 20

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_case_insensitive(self):
        assert get_experiment("FIG3").key == "fig3"


class TestTinyRuns:
    def test_fig3(self):
        t = run_experiment("fig3", repetitions=1, seed=0, cities=("shanghai",))
        assert {"city", "slot", "user", "profit"} <= set(t.columns)
        # Trajectories flatten once converged: last two slots identical.
        last = [r["profit"] for r in t if r["slot"] == 20]
        prev = [r["profit"] for r in t if r["slot"] == 19]
        converged_at = t[0]["converged_at"]
        if converged_at < 19:
            assert last == prev

    def test_fig4(self):
        t = run_experiment(
            "fig4", repetitions=2, seed=0, cities=("roma",),
            user_counts=(10,), algorithms=("DGRN", "MUUN"),
        )
        assert {"city", "n_users", "algorithm", "decision_slots_mean"} <= set(t.columns)
        assert len(t) == 2

    def test_fig5(self):
        t = run_experiment(
            "fig5", repetitions=2, seed=0, cities=("epfl",),
            task_counts=(20,), algorithms=("DGRN", "BATS"),
        )
        assert len(t) == 2
        by_algo = {r["algorithm"]: r["decision_slots_mean"] for r in t}
        assert by_algo["BATS"] >= by_algo["DGRN"]

    def test_fig6(self):
        t = run_experiment("fig6", repetitions=1, seed=0, cities=("shanghai",))
        pots = [r["potential"] for r in t]
        # Potential non-decreasing along the trajectory (Theorem 2).
        assert all(b >= a - 1e-9 for a, b in zip(pots, pots[1:]))

    def test_table3(self):
        t = run_experiment("table3", repetitions=2, seed=0, task_counts=(50, 60))
        assert {"n_tasks", "overlap_ratio_mean", "selected_users_mean"} <= set(t.columns)

    def test_fig7(self):
        t = run_experiment(
            "fig7", repetitions=2, seed=0, cities=("shanghai",), user_counts=(8,)
        )
        by_algo = {r["algorithm"]: r["total_profit_mean"] for r in t}
        assert by_algo["RRN"] <= by_algo["DGRN"] + 1e-9
        assert by_algo["DGRN"] <= by_algo["CORN"] + 1e-9

    def test_fig8(self):
        t = run_experiment(
            "fig8", repetitions=2, seed=0, cities=("shanghai",), user_counts=(20,)
        )
        for r in t:
            assert 0.0 <= r["coverage_mean"] <= 1.0

    def test_fig9(self):
        t = run_experiment(
            "fig9", repetitions=2, seed=0, cities=("shanghai",), task_counts=(30,)
        )
        by_algo = {r["algorithm"]: r["average_reward_mean"] for r in t}
        assert by_algo["DGRN"] >= by_algo["RRN"] - 1e-9

    def test_fig10(self):
        t = run_experiment(
            "fig10", repetitions=2, seed=0, cities=("shanghai",), user_counts=(8,)
        )
        for r in t:
            assert 0.0 < r["jain_index_mean"] <= 1.0

    def test_fig11(self):
        t = run_experiment(
            "fig11", repetitions=1, seed=0, cities=("shanghai",),
            task_counts=(20, 60), user_counts=(20,),
        )
        assert len(t) == 2

    def test_table4(self):
        t = run_experiment("table4", repetitions=2, seed=0, user_counts=(8, 9))
        for r in t:
            assert r["ratio_mean"] <= 1.0 + 1e-9
            assert r["ratio_mean"] >= r["poa_bound_mean"] - 1e-9

    def test_fig12(self):
        t = run_experiment("fig12", repetitions=1, seed=0)
        assert len(t) == 25  # 5x5 grid
        assert {"phi", "theta", "average_reward_mean"} <= set(t.columns)

    def test_table5(self):
        t = run_experiment("table5", repetitions=1, seed=0)
        assert len(t) == 24  # 3 weights x 8 values
        weights = {r["weight"] for r in t}
        assert weights == {"alpha", "beta", "gamma"}

    def test_fig13(self, tmp_path):
        t = run_experiment("fig13", seed=0, out_dir=tmp_path, cities=("roma",))
        assert len(t) == 2  # two shown users
        assert (tmp_path / "fig13_roma.svg").exists()

    def test_fig14(self):
        t = run_experiment("fig14", repetitions=1, seed=0, mu_values=(0.0, 1.0))
        assert len(t) == 2
        assert {"mu", "total_profit_mean"} <= set(t.columns)

    def test_fig15(self):
        t = run_experiment("fig15", repetitions=1, seed=0)
        assert len(t) == 6  # six drop probabilities
        by_p = {r["drop_prob"]: r for r in t}
        # Reliable delivery always terminates at a true Nash equilibrium.
        assert by_p[0.0]["is_nash_mean"] == 1.0
        assert by_p[0.0]["epsilon_gap_mean"] == pytest.approx(0.0, abs=1e-9)

    def test_fig17(self):
        from repro.experiments.fig17_equilibrium_spread import summarize

        t = run_experiment("fig17", repetitions=2, seed=0)
        assert len(t) == 2
        for r in t:
            assert r["ratio_worst"] <= r["ratio_mean"] <= r["ratio_best"] + 1e-12
            assert r["ratio_best"] <= 1.0 + 1e-9
            assert r["distinct_equilibria"] >= 1
        digest = summarize(t)
        assert digest[0]["instances"] == 2

    def test_fig18(self):
        t = run_experiment("fig18", repetitions=1, seed=0)
        assert len(t) == 6  # six fault scenarios
        by = {r["scenario"]: r for r in t}
        # The hardened protocol's promise: every in-envelope scenario
        # still terminates converged at Nash with invariants intact.
        for r in t:
            assert r["converged_mean"] == 1.0
            assert r["is_nash_mean"] == 1.0
            assert r["invariant_ok_mean"] == 1.0
        # The zero-fault baseline pays no redelivery overhead.
        assert by["none"]["overhead_mean"] == pytest.approx(0.0)

    def test_fig19(self):
        t = run_experiment("fig19", repetitions=1, seed=0)
        by = {r["shards"]: r for r in t}
        assert set(by) == {1, 2, 4}
        # Every shard count serves to a verified global Nash; speedup is
        # measured relative to K=1.
        for r in t:
            assert r["is_nash_mean"] == 1.0
            assert r["users_per_second_mean"] > 0
        assert by[1]["speedup_mean"] == pytest.approx(1.0)

    def test_fig16(self):
        t = run_experiment("fig16", repetitions=1, seed=0)
        assert len(t) == 3  # DGRN / BATS / RRN
        by = {r["algorithm"]: r for r in t}
        assert by["DGRN"]["completions_per_km_mean"] >= by["RRN"][
            "completions_per_km_mean"
        ] * 0.8
        for r in t:
            assert r["mean_travel_time_s_mean"] > 0
            assert r["total_distance_km_mean"] > 0
