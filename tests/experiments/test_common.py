"""Tests for the shared experiment plumbing (specs, seeding, shared runs)."""

import numpy as np
import pytest

from repro.experiments.common import (
    RepSpec,
    build_game_for_spec,
    make_specs,
    run_algorithms_on_game,
)


class TestMakeSpecs:
    def test_cross_product_size(self):
        specs = make_specs(
            "x", cities=("a", "b"), user_counts=(10, 20), task_counts=(5,),
            algorithms=("DGRN",), repetitions=3, seed=0,
        )
        assert len(specs) == 2 * 2 * 1 * 3

    def test_seeds_unique(self):
        specs = make_specs(
            "x", cities=("a",), user_counts=(10, 20), task_counts=(5, 6),
            algorithms=(), repetitions=4, seed=0,
        )
        assert len({s.seed for s in specs}) == len(specs)

    def test_deterministic(self):
        kw = dict(cities=("a",), user_counts=(10,), task_counts=(5,),
                  algorithms=("DGRN",), repetitions=3, seed=42)
        a = make_specs("x", **kw)
        b = make_specs("x", **kw)
        assert [s.seed for s in a] == [s.seed for s in b]

    def test_overrides_propagated(self):
        specs = make_specs(
            "x", cities=("shanghai",), user_counts=(5,), task_counts=(5,),
            algorithms=(), repetitions=1, seed=0,
            scenario_overrides={"phi": 0.3},
        )
        assert specs[0].scenario_overrides == {"phi": 0.3}


class TestBuildGameForSpec:
    def make_spec(self, **over):
        return RepSpec(
            experiment="x", city="roma", n_users=6, n_tasks=12, rep=0,
            seed=123, algorithms=("DGRN",), scenario_overrides=over,
        )

    def test_builds_matching_sizes(self):
        game = build_game_for_spec(self.make_spec())
        assert game.num_users == 6
        assert game.num_tasks == 12

    def test_deterministic_per_spec(self):
        a = build_game_for_spec(self.make_spec())
        b = build_game_for_spec(self.make_spec())
        assert a.route_sets == b.route_sets

    def test_overrides_applied(self):
        game = build_game_for_spec(self.make_spec(phi=0.25, theta=0.75))
        assert game.platform.phi == 0.25
        assert game.platform.theta == 0.75


class TestRunAlgorithmsOnGame:
    def test_shared_initial_profile(self):
        spec = RepSpec(
            experiment="x", city="roma", n_users=6, n_tasks=12, rep=0,
            seed=5, algorithms=("RRN", "DGRN"),
        )
        game = build_game_for_spec(spec)
        results = run_algorithms_on_game(spec, game)
        # RRN reports exactly the shared initial profile; DGRN started
        # there too, so its final profile differs only by recorded moves.
        rrn = results["RRN"].profile
        dgrn_moves = results["DGRN"].moves
        replay = rrn.copy()
        for m in dgrn_moves:
            replay.move(m.user, m.new_route)
        assert np.array_equal(replay.choices, results["DGRN"].profile.choices)

    def test_all_requested_algorithms_run(self):
        spec = RepSpec(
            experiment="x", city="roma", n_users=5, n_tasks=10, rep=0,
            seed=7, algorithms=("DGRN", "MUUN", "RRN"),
        )
        game = build_game_for_spec(spec)
        results = run_algorithms_on_game(spec, game)
        assert set(results) == {"DGRN", "MUUN", "RRN"}
