"""Tests for repro.experiments.results."""

import numpy as np
import pytest

from repro.experiments.results import ResultTable


@pytest.fixture
def table():
    t = ResultTable()
    t.append(city="a", algo="X", value=1.0)
    t.append(city="a", algo="X", value=3.0)
    t.append(city="a", algo="Y", value=10.0)
    t.append(city="b", algo="X", value=5.0)
    return t


class TestBasics:
    def test_len_iter_getitem(self, table):
        assert len(table) == 4
        assert table[0]["value"] == 1.0
        assert sum(1 for _ in table) == 4

    def test_columns_in_order(self, table):
        assert table.columns == ["city", "algo", "value"]

    def test_extend(self, table):
        table.extend([{"city": "c", "algo": "Z", "value": 0.0}])
        assert len(table) == 5

    def test_column_array(self, table):
        assert np.allclose(table.column("value"), [1, 3, 10, 5])

    def test_filter(self, table):
        sub = table.filter(lambda r: r["algo"] == "X")
        assert len(sub) == 3

    def test_rows_copied_on_init(self):
        row = {"x": 1}
        t = ResultTable([row])
        row["x"] = 99
        assert t[0]["x"] == 1


class TestAggregate:
    def test_mean_std(self, table):
        agg = table.aggregate(by=["city", "algo"], values=["value"])
        first = agg[0]
        assert first["city"] == "a" and first["algo"] == "X"
        assert first["n"] == 2
        assert first["value_mean"] == pytest.approx(2.0)
        assert first["value_std"] == pytest.approx(1.0)

    def test_group_count(self, table):
        agg = table.aggregate(by=["city"], values=["value"], stats=("mean",))
        assert len(agg) == 2

    def test_order_follows_first_appearance(self, table):
        agg = table.aggregate(by=["algo"], values=["value"], stats=("mean",))
        assert [r["algo"] for r in agg] == ["X", "Y"]

    def test_min_max_median(self, table):
        agg = table.aggregate(
            by=["city"], values=["value"], stats=("min", "max", "median")
        )
        a = agg[0]
        assert a["value_min"] == 1.0 and a["value_max"] == 10.0

    def test_unknown_stat(self, table):
        with pytest.raises(ValueError):
            table.aggregate(by=["city"], values=["value"], stats=("mode",))


class TestPivot:
    def test_matrix(self, table):
        idx, cols, mat = table.pivot("city", "algo", "value")
        assert idx == ["a", "b"] and cols == ["X", "Y"]
        assert mat[1, 0] == 5.0
        assert np.isnan(mat[1, 1])  # city b has no algo Y


class TestRender:
    def test_markdown(self, table):
        md = table.to_markdown()
        assert md.startswith("| city | algo | value |")
        assert "| a | X | 1.000 |" in md

    def test_markdown_empty(self):
        assert ResultTable().to_markdown() == "(empty table)"

    def test_csv_round_trip(self, table, tmp_path):
        path = tmp_path / "t.csv"
        text = table.to_csv(str(path))
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert lines[0] == "city,algo,value"
        assert len(lines) == 5

    def test_repr(self, table):
        assert "rows=4" in repr(table)
