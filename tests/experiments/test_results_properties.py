"""Property tests for ResultTable aggregation/rendering invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.experiments.results import ResultTable


@st.composite
def tables(draw):
    n_rows = draw(st.integers(1, 30))
    groups = draw(st.integers(1, 4))
    rows = []
    for _ in range(n_rows):
        rows.append(
            {
                "group": draw(st.integers(0, groups - 1)),
                "value": draw(
                    st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
                ),
            }
        )
    return ResultTable(rows)


class TestAggregateProperties:
    @given(tables())
    @settings(max_examples=50, deadline=None)
    def test_group_sizes_sum_to_total(self, table):
        agg = table.aggregate(by=["group"], values=["value"], stats=("mean",))
        assert sum(r["n"] for r in agg) == len(table)

    @given(tables())
    @settings(max_examples=50, deadline=None)
    def test_means_match_numpy(self, table):
        agg = table.aggregate(by=["group"], values=["value"], stats=("mean",))
        for row in agg:
            expected = np.mean(
                [r["value"] for r in table if r["group"] == row["group"]]
            )
            assert abs(row["value_mean"] - expected) < 1e-6 * max(
                1.0, abs(expected)
            )

    @given(tables())
    @settings(max_examples=50, deadline=None)
    def test_min_le_mean_le_max(self, table):
        agg = table.aggregate(
            by=["group"], values=["value"], stats=("min", "mean", "max")
        )
        for row in agg:
            assert row["value_min"] <= row["value_mean"] + 1e-9
            assert row["value_mean"] <= row["value_max"] + 1e-9

    @given(tables())
    @settings(max_examples=30, deadline=None)
    def test_csv_row_count(self, table):
        text = table.to_csv()
        assert len(text.strip().splitlines()) == len(table) + 1

    @given(tables())
    @settings(max_examples=30, deadline=None)
    def test_markdown_row_count(self, table):
        md = table.to_markdown()
        assert len(md.splitlines()) == len(table) + 2  # header + separator

    @given(tables())
    @settings(max_examples=30, deadline=None)
    def test_filter_partition(self, table):
        lo = table.filter(lambda r: r["value"] < 0)
        hi = table.filter(lambda r: r["value"] >= 0)
        assert len(lo) + len(hi) == len(table)
