"""Tests for repro.utils.timer."""

import pytest

from repro.utils.timer import Timer


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer()
        with t:
            pass
        assert t.elapsed >= 0.0
        assert len(t.laps) == 1

    def test_multiple_laps(self):
        t = Timer()
        for _ in range(3):
            with t:
                pass
        assert len(t.laps) == 3
        assert t.elapsed == pytest.approx(sum(t.laps))

    def test_mean_lap(self):
        t = Timer()
        assert t.mean_lap == 0.0
        with t:
            pass
        assert t.mean_lap == pytest.approx(t.elapsed)

    def test_double_start_raises(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0 and t.laps == [] and t._start is None
