"""Tests for repro.utils.timer."""

import pytest

from repro.utils.timer import Timer


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer()
        with t:
            pass
        assert t.elapsed >= 0.0
        assert len(t.laps) == 1

    def test_multiple_laps(self):
        t = Timer()
        for _ in range(3):
            with t:
                pass
        assert len(t.laps) == 3
        assert t.elapsed == pytest.approx(sum(t.laps))

    def test_mean_lap(self):
        t = Timer()
        assert t.mean_lap == 0.0
        with t:
            pass
        assert t.mean_lap == pytest.approx(t.elapsed)

    def test_double_start_raises(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0 and t.laps == [] and t._start is None

    def test_percentiles_empty(self):
        t = Timer()
        assert t.p50 == 0.0 and t.p95 == 0.0 and t.percentile(10) == 0.0

    def test_percentiles_of_laps(self):
        t = Timer()
        t.laps.extend([0.1, 0.2, 0.3, 0.4, 0.5])
        assert t.p50 == pytest.approx(0.3)
        assert t.percentile(100) == pytest.approx(0.5)
        assert t.percentile(0) == pytest.approx(0.1)
        assert t.p95 == pytest.approx(0.48)

    def test_percentiles_match_obs_histogram(self):
        from repro.obs.metrics import Histogram

        laps = [0.05, 0.01, 0.2, 0.11, 0.07, 0.31]
        t = Timer()
        t.laps.extend(laps)
        h = Histogram()
        for v in laps:
            h.observe(v)
        assert t.p50 == pytest.approx(h.p50)
        assert t.p95 == pytest.approx(h.p95)
