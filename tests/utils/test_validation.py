"""Tests for repro.utils.validation."""

import math

import pytest

from repro.utils.validation import (
    check_in_range,
    check_index,
    check_positive,
    check_probability,
    check_type,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_rejects_zero_strict(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_accepts_zero_nonstrict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_rejects_negative_nonstrict(self):
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", math.nan)

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", math.inf)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_in_range("x", 2.0, 0.0, 1.0)

    def test_nan(self):
        with pytest.raises(ValueError):
            check_in_range("x", math.nan, 0.0, 1.0)


class TestCheckProbability:
    @pytest.mark.parametrize("v", [0.0, 0.5, 1.0])
    def test_accepts(self, v):
        assert check_probability("p", v) == v

    @pytest.mark.parametrize("v", [-0.01, 1.01])
    def test_rejects(self, v):
        with pytest.raises(ValueError):
            check_probability("p", v)


class TestCheckIndex:
    def test_valid(self):
        assert check_index("i", 2, 5) == 2

    def test_negative(self):
        with pytest.raises(IndexError):
            check_index("i", -1, 5)

    def test_too_large(self):
        with pytest.raises(IndexError):
            check_index("i", 5, 5)


class TestCheckType:
    def test_passes(self):
        assert check_type("x", 3, int) == 3

    def test_fails(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "3", int)
