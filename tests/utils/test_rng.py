"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    RngStream,
    as_generator,
    choice_without_replacement,
    spawn_children,
)


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).integers(0, 1_000_000, size=5)
        b = as_generator(42).integers(0, 1_000_000, size=5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence(self):
        ss = np.random.SeedSequence(7)
        a = as_generator(ss).integers(0, 1000)
        b = as_generator(np.random.SeedSequence(7)).integers(0, 1000)
        assert a == b


class TestSpawnChildren:
    def test_count(self):
        assert len(spawn_children(0, 7)) == 7

    def test_zero(self):
        assert spawn_children(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_children(0, -1)

    def test_children_independent(self):
        kids = spawn_children(1, 3)
        draws = [k.integers(0, 2**62) for k in kids]
        assert len(set(draws)) == 3

    def test_reproducible_across_calls(self):
        a = [g.integers(0, 2**62) for g in spawn_children(9, 4)]
        b = [g.integers(0, 2**62) for g in spawn_children(9, 4)]
        assert a == b

    def test_from_generator(self):
        g = np.random.default_rng(5)
        kids = spawn_children(g, 2)
        assert len(kids) == 2


class TestRngStream:
    def test_same_label_same_stream(self):
        s = RngStream(3)
        a = s.child("tasks").integers(0, 2**62)
        b = s.child("tasks").integers(0, 2**62)
        assert a == b

    def test_different_labels_differ(self):
        s = RngStream(3)
        a = s.child("tasks").integers(0, 2**62)
        b = s.child("traces").integers(0, 2**62)
        assert a != b

    def test_multi_part_labels(self):
        s = RngStream(3)
        a = s.child("rep", 0).integers(0, 2**62)
        b = s.child("rep", 1).integers(0, 2**62)
        assert a != b

    def test_children_batch(self):
        s = RngStream(3)
        kids = s.children("reps", 5)
        assert len(kids) == 5
        draws = {k.integers(0, 2**62) for k in kids}
        assert len(draws) == 5

    def test_entropy_stable(self):
        s = RngStream(77)
        assert s.entropy == 77

    def test_int_labels(self):
        s = RngStream(1)
        assert s.child(4).integers(0, 2**62) == s.child(4).integers(0, 2**62)


class TestChoiceWithoutReplacement:
    def test_k_larger_than_items(self, rng):
        out = choice_without_replacement(rng, [1, 2, 3], 10)
        assert sorted(out) == [1, 2, 3]

    def test_distinct(self, rng):
        out = choice_without_replacement(rng, list(range(100)), 20)
        assert len(set(out)) == 20
