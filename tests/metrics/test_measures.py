"""Tests for repro.metrics.measures."""

import numpy as np
import pytest

from repro.core import RouteNavigationGame, StrategyProfile
from repro.metrics import (
    average_congestion,
    average_detour,
    average_reward,
    coverage,
    jain_fairness,
    overlap_ratio,
    per_user_rewards,
)


class TestCoverage:
    def test_fig1_equilibrium(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])  # tasks A, B covered; C not
        assert coverage(p) == pytest.approx(2 / 3)

    def test_full_coverage(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 1])
        assert coverage(p) == pytest.approx(1.0)

    def test_zero_tasks(self):
        g = RouteNavigationGame.from_coverage([[[]]], base_rewards=[])
        assert coverage(StrategyProfile(g, [0])) == 0.0


class TestRewards:
    def test_per_user_rewards_fig1(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])
        rewards = per_user_rewards(p)
        assert rewards[0] == pytest.approx(5.0)
        assert rewards[1] == pytest.approx(3.0)
        assert rewards[2] == pytest.approx(3.0)

    def test_average_reward(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])
        assert average_reward(p) == pytest.approx(11.0 / 3)

    def test_reward_ignores_alpha_and_costs(self):
        from repro.core import PlatformWeights, UserWeights

        g = RouteNavigationGame.from_coverage(
            [[[0]]],
            base_rewards=[10.0],
            detours=[[4.0]],
            congestions=[[4.0]],
            user_weights=[UserWeights(0.2, 0.9, 0.9)],
            platform=PlatformWeights(0.8, 0.8),
        )
        p = StrategyProfile(g, [0])
        assert per_user_rewards(p)[0] == pytest.approx(10.0)


class TestJain:
    def test_equal_values_one(self):
        assert jain_fairness(np.array([3.0, 3.0, 3.0])) == pytest.approx(1.0)

    def test_single_nonzero_is_1_over_n(self):
        assert jain_fairness(np.array([1.0, 0.0, 0.0, 0.0])) == pytest.approx(0.25)

    def test_range(self, rng):
        for _ in range(20):
            vals = rng.uniform(0, 10, size=rng.integers(1, 10))
            j = jain_fairness(vals)
            assert 1.0 / len(vals) - 1e-9 <= j <= 1.0 + 1e-9

    def test_profile_overload(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])
        from repro.core.profit import all_profits

        assert jain_fairness(p) == pytest.approx(jain_fairness(all_profits(p)))

    def test_degenerate_inputs(self):
        assert jain_fairness(np.array([])) == 1.0
        assert jain_fairness(np.array([0.0, 0.0])) == 1.0


class TestOverlap:
    def test_fig1(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])  # A has 2 users
        assert overlap_ratio(p) == pytest.approx(1 / 3)

    def test_no_overlap(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 1])
        # A has only u2, B only u1, C only u3.
        assert overlap_ratio(p) == pytest.approx(0.0)

    def test_zero_tasks(self):
        g = RouteNavigationGame.from_coverage([[[]]], base_rewards=[])
        assert overlap_ratio(StrategyProfile(g, [0])) == 0.0


class TestPlatformUtility:
    def test_monotone_in_coverage(self, fig1_game):
        from repro.metrics import platform_utility

        full = StrategyProfile(fig1_game, [0, 0, 1])  # all 3 tasks covered
        partial = StrategyProfile(fig1_game, [0, 0, 0])  # 2 tasks covered
        assert platform_utility(full) > platform_utility(partial)

    def test_diminishing_returns(self, fig1_game):
        from repro.metrics import platform_utility

        # Stacking everyone on one task is worth less than spreading.
        stacked = StrategyProfile(fig1_game, [1, 0, 0])
        spread = StrategyProfile(fig1_game, [0, 0, 1])
        assert platform_utility(spread) > platform_utility(stacked)

    def test_bounds(self, fig1_game):
        from repro.metrics import platform_utility

        p = StrategyProfile(fig1_game, [0, 0, 1])
        u = platform_utility(p)
        assert 0.0 <= u <= fig1_game.num_tasks

    def test_rate_validation(self, fig1_game):
        from repro.metrics import platform_utility

        with pytest.raises(ValueError):
            platform_utility(StrategyProfile(fig1_game, [0, 0, 0]),
                             quality_rate=0.0)


class TestDetourCongestion:
    def test_average_detour(self):
        g = RouteNavigationGame.from_coverage(
            [[[0], []], [[0]]],
            base_rewards=[10.0],
            detours=[[1.0, 3.0], [5.0]],
            congestions=[[2.0, 0.0], [4.0]],
        )
        p = StrategyProfile(g, [1, 0])
        assert average_detour(p) == pytest.approx((3.0 + 5.0) / 2)
        assert average_congestion(p) == pytest.approx((0.0 + 4.0) / 2)
