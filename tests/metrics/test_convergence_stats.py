"""Tests for repro.metrics.convergence."""

import pytest

from repro.algorithms import DGRN, RRN
from repro.metrics import convergence_stats


class TestConvergenceStats:
    def test_converged_run(self, shanghai_game):
        result = DGRN(seed=0).run(shanghai_game)
        stats = convergence_stats(shanghai_game, result)
        assert stats.decision_slots == result.decision_slots
        assert stats.total_moves == len(result.moves)
        if result.moves:
            assert stats.min_gain > 0
            assert stats.within_bound
        assert stats.potential_monotone

    def test_no_moves_infinite_bound(self, fig1_game):
        result = RRN(seed=0).run(fig1_game)
        stats = convergence_stats(fig1_game, result)
        assert stats.theorem4_bound == float("inf")
        assert stats.within_bound

    def test_min_gain_matches_move_log(self, shanghai_game):
        result = DGRN(seed=1).run(shanghai_game)
        if result.moves:
            stats = convergence_stats(shanghai_game, result)
            assert stats.min_gain == pytest.approx(
                max(min(m.gain for m in result.moves), 1e-12)
            )
