"""Test helpers: random abstract game generation (plain + hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core import PlatformWeights, RouteNavigationGame, UserWeights


def random_game(
    rng: np.random.Generator,
    *,
    max_users: int = 6,
    max_routes: int = 4,
    max_tasks: int = 8,
) -> RouteNavigationGame:
    """Small random abstract game (coverage-level, no road substrate)."""
    m = int(rng.integers(1, max_users + 1))
    n = int(rng.integers(1, max_tasks + 1))
    coverage = []
    for _ in range(m):
        n_routes = int(rng.integers(1, max_routes + 1))
        routes = []
        for _ in range(n_routes):
            size = int(rng.integers(0, min(4, n) + 1))
            routes.append(sorted(int(t) for t in rng.choice(n, size=size, replace=False)))
        coverage.append(routes)
    return RouteNavigationGame.from_coverage(
        coverage,
        base_rewards=[float(v) for v in rng.uniform(1.0, 20.0, n)],
        reward_increments=[float(v) for v in rng.uniform(0.0, 1.0, n)],
        detours=[[float(rng.uniform(0, 10)) for _ in r] for r in coverage],
        congestions=[[float(rng.uniform(0, 10)) for _ in r] for r in coverage],
        user_weights=[
            UserWeights(*(float(v) for v in rng.uniform(0.1, 0.9, 3)))
            for _ in range(m)
        ],
        platform=PlatformWeights(
            float(rng.uniform(0.0, 0.8)), float(rng.uniform(0.0, 0.8))
        ),
    )


@st.composite
def games(draw, max_users: int = 5, max_routes: int = 3, max_tasks: int = 6):
    """Hypothesis strategy producing small valid games."""
    m = draw(st.integers(1, max_users))
    n = draw(st.integers(1, max_tasks))
    coverage = []
    for _ in range(m):
        n_routes = draw(st.integers(1, max_routes))
        routes = []
        for _ in range(n_routes):
            subset = draw(
                st.sets(st.integers(0, n - 1), min_size=0, max_size=min(3, n))
            )
            routes.append(sorted(subset))
        coverage.append(routes)
    base = [draw(st.floats(0.5, 20.0, allow_nan=False)) for _ in range(n)]
    incs = [draw(st.floats(0.0, 1.0, allow_nan=False)) for _ in range(n)]
    detours = [
        [draw(st.floats(0.0, 10.0, allow_nan=False)) for _ in r] for r in coverage
    ]
    congs = [
        [draw(st.floats(0.0, 10.0, allow_nan=False)) for _ in r] for r in coverage
    ]
    weights = [
        UserWeights(
            draw(st.floats(0.1, 0.9)), draw(st.floats(0.1, 0.9)),
            draw(st.floats(0.1, 0.9)),
        )
        for _ in range(m)
    ]
    platform = PlatformWeights(draw(st.floats(0.0, 0.8)), draw(st.floats(0.0, 0.8)))
    return RouteNavigationGame.from_coverage(
        coverage,
        base_rewards=base,
        reward_increments=incs,
        detours=detours,
        congestions=congs,
        user_weights=weights,
        platform=platform,
    )
