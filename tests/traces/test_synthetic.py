"""Tests for the calibrated synthetic trace generator."""

import numpy as np
import pytest

from repro.geometry.point import haversine_km
from repro.traces.cities import CITY_PROFILES, get_city
from repro.traces.synthetic import synthesize_traces


class TestSynthesizeTraces:
    @pytest.mark.parametrize("city", sorted(CITY_PROFILES))
    def test_default_fleet_matches_paper_count(self, city):
        profile = get_city(city)
        ts = synthesize_traces(profile, trips_per_vehicle=1, seed=0)
        assert len(ts) == profile.paper_trace_count

    def test_points_inside_city_box(self):
        city = get_city("shanghai")
        ts = synthesize_traces(city, n_vehicles=10, seed=1)
        box = city.lonlat_box
        for traj in ts:
            assert np.all(traj.lons >= box.min_x - 0.01)
            assert np.all(traj.lons <= box.max_x + 0.01)
            assert np.all(traj.lats >= box.min_y - 0.01)
            assert np.all(traj.lats <= box.max_y + 0.01)

    def test_timestamps_increase(self):
        ts = synthesize_traces(get_city("roma"), n_vehicles=5, seed=2)
        for traj in ts:
            assert np.all(np.diff(traj.times) >= 0)

    def test_occupancy_marks_trips(self):
        ts = synthesize_traces(get_city("epfl"), n_vehicles=5, seed=3)
        for traj in ts:
            assert traj.occupied.any()
            assert not traj.occupied.all()  # idle fixes exist between trips

    def test_reproducible(self):
        a = synthesize_traces(get_city("roma"), n_vehicles=3, seed=7)
        b = synthesize_traces(get_city("roma"), n_vehicles=3, seed=7)
        for x, y in zip(a, b):
            assert np.allclose(x.lats, y.lats)
            assert np.allclose(x.times, y.times)

    def test_trip_lengths_plausible(self):
        city = get_city("shanghai")
        ts = synthesize_traces(city, n_vehicles=40, trips_per_vehicle=2, seed=4)
        lengths = []
        for traj in ts:
            for trip in traj.trips():
                if bool(trip.occupied[0]) and len(trip) >= 2:
                    o, d = trip.origin, trip.destination
                    lengths.append(haversine_km(o[0], o[1], d[0], d[1]))
        # Median trip should be within a factor ~3 of the calibrated mean
        # (box clamping shortens trips that would exit the city).
        med = float(np.median(lengths))
        assert 0.3 * city.mean_trip_km < med < 3.0 * city.mean_trip_km

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_traces(get_city("roma"), n_vehicles=0)
        with pytest.raises(ValueError):
            synthesize_traces(get_city("roma"), n_vehicles=1, trips_per_vehicle=0)


class TestCityProfiles:
    def test_get_city_case_insensitive(self):
        assert get_city("Shanghai").name == "shanghai"

    def test_unknown_city(self):
        with pytest.raises(KeyError):
            get_city("atlantis")

    @pytest.mark.parametrize("city", sorted(CITY_PROFILES))
    def test_network_builds_and_connects(self, city):
        from repro.network.shortest_path import dijkstra

        net = get_city(city).build_network(seed=0)
        res = dijkstra(net, 0)
        assert np.all(np.isfinite(res.dist))

    @pytest.mark.parametrize("city", sorted(CITY_PROFILES))
    def test_center_inside_box(self, city):
        profile = get_city(city)
        lat, lon = profile.center
        assert profile.lonlat_box.contains(lon, lat)

    def test_morphologies_differ(self):
        assert {p.morphology for p in CITY_PROFILES.values()} == {
            "grid", "radial", "geometric"
        }
