"""Hypothesis round-trip properties for the trace parsers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.traces.model import TraceSet, Trajectory
from repro.traces.parsers import (
    parse_epfl_cab_file,
    parse_roma_file,
    parse_shanghai_file,
    write_epfl_cab_file,
    write_roma_file,
    write_shanghai_file,
)


@st.composite
def trajectories(draw):
    n = draw(st.integers(2, 12))
    t0 = draw(st.floats(1e9, 2e9))
    gaps = [draw(st.floats(1.0, 600.0)) for _ in range(n - 1)]
    times = np.concatenate([[t0], t0 + np.cumsum(gaps)])
    lats = np.array([draw(st.floats(-60.0, 60.0)) for _ in range(n)])
    lons = np.array([draw(st.floats(-170.0, 170.0)) for _ in range(n)])
    occ = np.array([draw(st.booleans()) for _ in range(n)])
    vid = draw(st.text(alphabet="abcdefgh0123456789", min_size=1, max_size=8))
    return Trajectory(vehicle_id=vid, times=times, lats=lats, lons=lons,
                      occupied=occ)


class TestRoundTripProperties:
    @given(traj=trajectories())
    @settings(max_examples=25, deadline=None)
    def test_epfl_round_trip(self, traj, tmp_path_factory):
        path = tmp_path_factory.mktemp("epfl") / "new_cab.txt"
        write_epfl_cab_file(path, traj)
        got = parse_epfl_cab_file(path)
        assert len(got) == len(traj)
        assert np.allclose(got.lats, traj.lats, atol=1e-4)
        assert np.allclose(got.lons, traj.lons, atol=1e-4)
        assert np.array_equal(got.occupied, traj.occupied)

    @given(traj=trajectories())
    @settings(max_examples=25, deadline=None)
    def test_roma_round_trip(self, traj, tmp_path_factory):
        path = tmp_path_factory.mktemp("roma") / "taxi.txt"
        write_roma_file(path, TraceSet("t", [traj]))
        got = parse_roma_file(path)[0]
        assert np.allclose(got.lats, traj.lats, atol=1e-5)
        assert np.allclose(got.times, traj.times, atol=1e-2)

    @given(traj=trajectories())
    @settings(max_examples=25, deadline=None)
    def test_shanghai_round_trip(self, traj, tmp_path_factory):
        path = tmp_path_factory.mktemp("sh") / "sh.csv"
        write_shanghai_file(path, TraceSet("t", [traj]))
        got = parse_shanghai_file(path)[0]
        assert np.allclose(got.lats, traj.lats, atol=1e-5)
        assert np.allclose(got.lons, traj.lons, atol=1e-5)
        assert np.array_equal(got.occupied, traj.occupied)
