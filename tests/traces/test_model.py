"""Tests for repro.traces.model."""

import numpy as np
import pytest

from repro.traces.model import TraceSet, Trajectory


def make_traj(vid="cab-1", times=None, occ=None):
    times = times if times is not None else [0.0, 60.0, 120.0, 180.0]
    n = len(times)
    lats = np.linspace(31.20, 31.25, n)
    lons = np.linspace(121.40, 121.44, n)
    return Trajectory(
        vehicle_id=vid,
        times=np.asarray(times, dtype=float),
        lats=lats,
        lons=lons,
        occupied=np.asarray(occ, dtype=bool) if occ is not None else np.zeros(0, bool),
    )


class TestTrajectory:
    def test_basic_properties(self):
        t = make_traj()
        assert len(t) == 4
        assert t.duration_s == pytest.approx(180.0)
        assert t.origin == (pytest.approx(31.20), pytest.approx(121.40))
        assert t.destination == (pytest.approx(31.25), pytest.approx(121.44))

    def test_default_occupied_all_true(self):
        assert bool(np.all(make_traj().occupied))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            Trajectory("x", np.zeros(3), np.zeros(2), np.zeros(3))

    def test_decreasing_times_rejected(self):
        with pytest.raises(ValueError):
            make_traj(times=[10.0, 5.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trajectory("x", np.zeros(0), np.zeros(0), np.zeros(0))

    def test_bounding_box(self):
        b = make_traj().bounding_box()
        assert b.min_y == pytest.approx(31.20)
        assert b.max_x == pytest.approx(121.44)


class TestTrips:
    def test_split_on_pickup(self):
        t = make_traj(occ=[False, True, True, False])
        trips = t.trips()
        # Break at index 1 (pickup): fragments [0:1] dropped (<2), [1:4] kept.
        assert len(trips) == 1
        assert len(trips[0]) == 3

    def test_split_on_time_gap(self):
        t = make_traj(times=[0.0, 60.0, 5000.0, 5060.0])
        trips = t.trips(gap_s=600.0)
        assert len(trips) == 2
        assert all(len(tr) == 2 for tr in trips)

    def test_no_breaks_single_trip(self):
        trips = make_traj().trips()
        assert len(trips) == 1
        assert len(trips[0]) == 4

    def test_single_point_no_trips(self):
        t = make_traj(times=[0.0])
        assert t.trips() == []

    def test_trip_ids_derived(self):
        trips = make_traj().trips()
        assert trips[0].vehicle_id.startswith("cab-1#t")


class TestTraceSet:
    def test_len_iter_getitem(self):
        ts = TraceSet("demo", [make_traj("a"), make_traj("b")])
        assert len(ts) == 2
        assert ts[0].vehicle_id == "a"
        assert [t.vehicle_id for t in ts] == ["a", "b"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TraceSet("demo", [])

    def test_select_subsample(self):
        ts = TraceSet("demo", [make_traj(f"v{i}") for i in range(10)])
        sub = ts.select(4, seed=0)
        assert len(sub) == 4
        assert len({t.vehicle_id for t in sub}) == 4

    def test_select_more_than_available(self):
        ts = TraceSet("demo", [make_traj("a")])
        assert len(ts.select(5, seed=0)) == 1

    def test_bounding_box_union(self):
        ts = TraceSet("demo", [make_traj("a"), make_traj("b")])
        b = ts.bounding_box()
        assert b.min_y == pytest.approx(31.20)

    def test_total_points(self):
        ts = TraceSet("demo", [make_traj("a"), make_traj("b")])
        assert ts.total_points() == 8

    def test_repr(self):
        ts = TraceSet("demo", [make_traj()])
        assert "vehicles=1" in repr(ts)
