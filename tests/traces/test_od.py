"""Tests for OD-pair extraction and node snapping."""

import numpy as np
import pytest

from repro.network.builders import grid_city
from repro.traces.cities import get_city
from repro.traces.od import extract_od_pairs, od_pairs_to_nodes
from repro.traces.synthetic import synthesize_traces


@pytest.fixture(scope="module")
def traces():
    return synthesize_traces(
        get_city("shanghai"), n_vehicles=20, trips_per_vehicle=2, seed=5
    )


class TestExtractOdPairs:
    def test_yields_pairs(self, traces):
        pairs = extract_od_pairs(traces)
        assert len(pairs) >= 10

    def test_min_trip_filter(self, traces):
        from repro.geometry.point import haversine_km

        pairs = extract_od_pairs(traces, min_trip_km=1.0)
        for o_lat, o_lon, d_lat, d_lon in pairs:
            assert haversine_km(o_lat, o_lon, d_lat, d_lon) >= 1.0

    def test_large_min_trip_empties(self, traces):
        assert extract_od_pairs(traces, min_trip_km=1000.0) == []

    def test_pairs_inside_city(self, traces):
        box = get_city("shanghai").lonlat_box
        for o_lat, o_lon, d_lat, d_lon in extract_od_pairs(traces):
            assert box.contains(o_lon, o_lat)
            assert box.contains(d_lon, d_lat)


class TestOdPairsToNodes:
    def setup_method(self):
        self.net = grid_city(6, 6, seed=0)
        self.city = get_city("shanghai")

    def snap(self, pairs, **kw):
        return od_pairs_to_nodes(
            self.net,
            pairs,
            origin_latlon=(self.city.lonlat_box.min_y, self.city.lonlat_box.min_x),
            bbox_latlon_width=(
                self.city.lonlat_box.height,
                self.city.lonlat_box.width,
            ),
            **kw,
        )

    def test_snaps_to_valid_nodes(self, traces):
        pairs = self.snap(extract_od_pairs(traces))
        for o, d in pairs:
            assert 0 <= o < self.net.num_nodes
            assert 0 <= d < self.net.num_nodes
            assert o != d

    def test_n_pairs_subsample(self, traces):
        pairs = self.snap(extract_od_pairs(traces), n_pairs=5, seed=1)
        assert len(pairs) == 5

    def test_n_pairs_oversample_with_replacement(self, traces):
        geo = extract_od_pairs(traces)
        pairs = self.snap(geo, n_pairs=len(geo) * 3, seed=1)
        assert len(pairs) == len(geo) * 3

    def test_corner_mapping(self):
        # The geographic min-corner maps to the planar min-corner's node.
        box = self.city.lonlat_box
        pairs = self.snap([(box.min_y, box.min_x, box.max_y, box.max_x)])
        (o, d) = pairs[0]
        assert o == self.net.nearest_node(
            self.net.bounding_box().min_x, self.net.bounding_box().min_y
        )

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            self.snap([])

    def test_reproducible_subsample(self, traces):
        geo = extract_od_pairs(traces)
        a = self.snap(geo, n_pairs=6, seed=9)
        b = self.snap(geo, n_pairs=6, seed=9)
        assert a == b
