"""Round-trip and format tests for the three trace parsers."""

import numpy as np
import pytest

from repro.traces.cities import get_city
from repro.traces.parsers import (
    parse_epfl_cab_file,
    parse_epfl_directory,
    parse_roma_file,
    parse_shanghai_file,
    write_epfl_cab_file,
    write_roma_file,
    write_shanghai_file,
)
from repro.traces.synthetic import synthesize_traces


@pytest.fixture(scope="module")
def traces():
    return synthesize_traces(
        get_city("roma"), n_vehicles=4, trips_per_vehicle=2, seed=3
    )


class TestRomaRoundTrip:
    def test_vehicle_count_preserved(self, traces, tmp_path):
        path = tmp_path / "roma.txt"
        write_roma_file(path, traces)
        parsed = parse_roma_file(path)
        assert len(parsed) == len(traces)

    def test_coordinates_preserved(self, traces, tmp_path):
        path = tmp_path / "roma.txt"
        write_roma_file(path, traces)
        parsed = {t.vehicle_id: t for t in parse_roma_file(path)}
        for orig in traces:
            got = parsed[orig.vehicle_id]
            assert np.allclose(got.lats, orig.lats, atol=1e-6)
            assert np.allclose(got.lons, orig.lons, atol=1e-6)

    def test_timestamps_preserved(self, traces, tmp_path):
        path = tmp_path / "roma.txt"
        write_roma_file(path, traces)
        parsed = {t.vehicle_id: t for t in parse_roma_file(path)}
        for orig in traces:
            assert np.allclose(parsed[orig.vehicle_id].times, orig.times, atol=1e-3)

    def test_real_format_line(self, tmp_path):
        path = tmp_path / "real.txt"
        path.write_text("156;2014-02-01 00:00:00.739166+01;POINT(41.88 12.48)\n"
                        "156;2014-02-01 00:00:05.000000+01;POINT(41.89 12.49)\n")
        ts = parse_roma_file(path)
        assert len(ts) == 1
        assert ts[0].lats[0] == pytest.approx(41.88)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1;2014-02-01 00:00:00+01;NOTAPOINT\n")
        with pytest.raises(ValueError, match="POINT"):
            parse_roma_file(path)

    def test_wrong_field_count_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1;2;3;4\n")
        with pytest.raises(ValueError, match="fields"):
            parse_roma_file(path)


class TestEpflRoundTrip:
    def test_single_cab(self, traces, tmp_path):
        orig = traces[0]
        path = tmp_path / "new_abcd.txt"
        write_epfl_cab_file(path, orig)
        got = parse_epfl_cab_file(path)
        assert got.vehicle_id == "abcd"
        assert np.allclose(got.lats, orig.lats, atol=1e-5)
        # Times are integer-truncated by the format.
        assert np.allclose(got.times, np.floor(orig.times), atol=1.0)

    def test_occupancy_preserved(self, traces, tmp_path):
        orig = traces[0]
        path = tmp_path / "new_x.txt"
        write_epfl_cab_file(path, orig)
        got = parse_epfl_cab_file(path)
        assert np.array_equal(got.occupied, orig.occupied)

    def test_file_is_reverse_chronological(self, traces, tmp_path):
        path = tmp_path / "new_y.txt"
        write_epfl_cab_file(path, traces[0])
        raw_times = [float(l.split()[3]) for l in path.read_text().splitlines()]
        assert raw_times == sorted(raw_times, reverse=True)

    def test_directory_parsing(self, traces, tmp_path):
        for i, t in enumerate(traces):
            write_epfl_cab_file(tmp_path / f"new_cab{i}.txt", t)
        ts = parse_epfl_directory(tmp_path)
        assert len(ts) == len(traces)

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            parse_epfl_directory(tmp_path)

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "new_z.txt"
        path.write_text("37.75 -122.39 0\n")
        with pytest.raises(ValueError, match="4 fields"):
            parse_epfl_cab_file(path)


class TestShanghaiRoundTrip:
    def test_round_trip(self, traces, tmp_path):
        path = tmp_path / "sh.csv"
        write_shanghai_file(path, traces)
        parsed = {t.vehicle_id: t for t in parse_shanghai_file(path)}
        assert len(parsed) == len(traces)
        for orig in traces:
            got = parsed[orig.vehicle_id]
            assert np.allclose(got.lats, orig.lats, atol=1e-6)
            assert np.array_equal(got.occupied, orig.occupied)

    def test_header_written_and_skipped(self, traces, tmp_path):
        path = tmp_path / "sh.csv"
        write_shanghai_file(path, traces)
        first = path.read_text().splitlines()[0]
        assert first.startswith("taxi_id,")
        assert len(parse_shanghai_file(path)) == len(traces)

    def test_speed_column_plausible(self, traces, tmp_path):
        path = tmp_path / "sh.csv"
        write_shanghai_file(path, traces)
        speeds = [
            float(l.split(",")[4])
            for l in path.read_text().splitlines()[1:]
        ]
        assert all(0.0 <= s < 200.0 for s in speeds)

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n")
        with pytest.raises(ValueError, match="7 CSV fields"):
            parse_shanghai_file(path)
