"""Tests for trace-derived congestion (projection, speeds, traffic model)."""

import numpy as np
import pytest

from repro.geometry.point import BoundingBox
from repro.network.builders import grid_city
from repro.traces.cities import get_city
from repro.traces.model import TraceSet, Trajectory
from repro.traces.projection import GeoProjection
from repro.traces.speed_estimation import (
    TraceDerivedTraffic,
    estimate_edge_speeds,
    segment_speeds,
)
from repro.traces.synthetic import synthesize_traces


@pytest.fixture(scope="module")
def net():
    return grid_city(6, 6, seed=0)


@pytest.fixture(scope="module")
def city():
    return get_city("shanghai")


@pytest.fixture(scope="module")
def projection(net, city):
    return GeoProjection.fit(city.lonlat_box, net)


@pytest.fixture(scope="module")
def traces(city):
    return synthesize_traces(city, n_vehicles=40, trips_per_vehicle=3, seed=9)


class TestGeoProjection:
    def test_corners_map_to_planar_corners(self, projection, city, net):
        box = city.lonlat_box
        planar = net.bounding_box()
        lo = projection.to_xy(np.array([box.min_y]), np.array([box.min_x]))[0]
        hi = projection.to_xy(np.array([box.max_y]), np.array([box.max_x]))[0]
        assert lo[0] == pytest.approx(planar.min_x)
        assert lo[1] == pytest.approx(planar.min_y)
        assert hi[0] == pytest.approx(planar.max_x)
        assert hi[1] == pytest.approx(planar.max_y)

    def test_out_of_box_clamped(self, projection, net):
        planar = net.bounding_box()
        pt = projection.to_xy(np.array([0.0]), np.array([0.0]))[0]
        assert planar.contains(pt[0], pt[1])

    def test_degenerate_box_rejected(self, net):
        with pytest.raises(ValueError):
            GeoProjection.fit(BoundingBox(0, 0, 0, 1), net)

    def test_km_per_deg_positive(self, projection):
        kx, ky = projection.km_per_deg
        assert kx > 0 and ky > 0


class TestSegmentSpeeds:
    def test_known_speed(self):
        # 60 km/h due north: 1 km in 60 s is ~0.008993 degrees of latitude.
        dlat = 1.0 / 111.19
        traj = Trajectory(
            "v", times=np.array([0.0, 60.0]),
            lats=np.array([31.0, 31.0 + dlat]), lons=np.array([121.0, 121.0]),
        )
        mids, speeds = segment_speeds(TraceSet("t", [traj]))
        assert len(speeds) == 1
        assert speeds[0] == pytest.approx(60.0, rel=0.01)

    def test_gap_segments_dropped(self):
        traj = Trajectory(
            "v", times=np.array([0.0, 10_000.0]),
            lats=np.array([31.0, 31.1]), lons=np.array([121.0, 121.0]),
        )
        _, speeds = segment_speeds(TraceSet("t", [traj]))
        assert len(speeds) == 0

    def test_glitch_speeds_dropped(self):
        traj = Trajectory(
            "v", times=np.array([0.0, 1.0]),
            lats=np.array([31.0, 31.5]), lons=np.array([121.0, 121.0]),
        )
        _, speeds = segment_speeds(TraceSet("t", [traj]))
        assert len(speeds) == 0

    def test_synthetic_traces_plausible(self, traces, city):
        _, speeds = segment_speeds(traces)
        assert len(speeds) > 50
        # Mean speed near the city's calibrated mean (idle fixes drag it a bit).
        assert 5.0 < float(np.median(speeds)) < 2.0 * city.mean_speed_kmh


class TestEstimateEdgeSpeeds:
    def test_caps_at_free_flow(self, net, traces, projection):
        observed, counts = estimate_edge_speeds(net, traces, projection)
        assert np.all(observed <= net.free_flow_kmh + 1e-9)
        assert np.all(observed > 0)
        assert counts.sum() > 0

    def test_unobserved_edges_keep_free_flow(self, net, projection):
        # A single stationary-ish trace observes almost nothing.
        traj = Trajectory(
            "v", times=np.array([0.0, 60.0]),
            lats=np.array([31.17, 31.171]), lons=np.array([121.40, 121.401]),
        )
        observed, counts = estimate_edge_speeds(
            net, TraceSet("t", [traj]), projection
        )
        untouched = counts == 0
        assert np.allclose(observed[untouched], net.free_flow_kmh[untouched])

    def test_empty_speed_set(self, net, projection):
        traj = Trajectory(
            "v", times=np.array([0.0]), lats=np.array([31.2]),
            lons=np.array([121.45]),
        )
        observed, counts = estimate_edge_speeds(
            net, TraceSet("t", [traj]), projection
        )
        assert np.allclose(observed, net.free_flow_kmh)
        assert counts.sum() == 0


class TestTraceDerivedTraffic:
    def test_applies_to_network(self, net, traces, projection):
        traffic = TraceDerivedTraffic(traces, projection)
        slow = traffic.apply(net)
        assert np.all((slow >= 0) & (slow <= 1))
        assert traffic.coverage_fraction > 0.2

    def test_route_congestion_bounded_by_scale(self, net, traces, projection):
        traffic = TraceDerivedTraffic(traces, projection, scale=20.0)
        traffic.apply(net)
        c = traffic.route_congestion(net, [0, 1, 2])
        assert 0.0 <= c <= 20.0

    def test_trivial_route(self, net, traces, projection):
        traffic = TraceDerivedTraffic(traces, projection)
        assert traffic.route_congestion(net, [0]) == 0.0

    def test_scenario_integration(self):
        from repro.algorithms import DGRN
        from repro.scenario import ScenarioConfig, build_scenario

        sc = build_scenario(
            ScenarioConfig(city="roma", n_users=8, n_tasks=20, seed=6,
                           congestion_source="traces")
        )
        assert isinstance(sc.planner.traffic, TraceDerivedTraffic)
        res = DGRN(seed=0).run(sc.game)
        assert res.is_nash

    def test_config_validation(self):
        from repro.scenario import ScenarioConfig

        with pytest.raises(ValueError):
            ScenarioConfig(congestion_source="oracle")
