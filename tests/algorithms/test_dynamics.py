"""Tests for the response-dynamics allocators (DGRN/MUUN/BRUN/BUAU/BATS)."""

import numpy as np
import pytest

from repro.algorithms import BATS, BRUN, BUAU, DGRN, MUUN
from repro.algorithms.base import RunConfig
from repro.core import StrategyProfile
from repro.core.equilibrium import is_nash_equilibrium
from repro.metrics import convergence_stats

from tests.helpers import random_game

DYNAMICS = [DGRN, MUUN, BRUN, BUAU, BATS]


@pytest.mark.parametrize("algo_cls", DYNAMICS)
class TestConvergence:
    def test_reaches_nash_on_fig1(self, algo_cls, fig1_game):
        result = algo_cls(seed=0).run(fig1_game)
        assert result.converged
        assert is_nash_equilibrium(result.profile)

    def test_reaches_nash_on_random_games(self, algo_cls, rng):
        for _ in range(10):
            g = random_game(rng)
            result = algo_cls(seed=rng).run(g)
            assert result.converged
            assert is_nash_equilibrium(result.profile)

    def test_reaches_nash_on_scenario(self, algo_cls, shanghai_game):
        result = algo_cls(seed=7).run(shanghai_game)
        assert result.converged
        assert is_nash_equilibrium(result.profile)

    def test_moves_all_strictly_improving(self, algo_cls, shanghai_game):
        result = algo_cls(seed=7).run(shanghai_game)
        assert all(m.gain > 0 for m in result.moves)

    def test_potential_monotone_nondecreasing(self, algo_cls, shanghai_game):
        result = algo_cls(seed=7).run(shanghai_game)
        stats = convergence_stats(shanghai_game, result)
        assert stats.potential_monotone

    def test_within_theorem4_bound(self, algo_cls, shanghai_game):
        result = algo_cls(seed=7).run(shanghai_game)
        stats = convergence_stats(shanghai_game, result)
        assert stats.within_bound

    def test_respects_initial_profile(self, algo_cls, fig1_game):
        initial = StrategyProfile(fig1_game, [0, 0, 0])  # already a NE
        result = algo_cls(seed=0).run(fig1_game, initial=initial)
        assert result.decision_slots <= fig1_game.num_users  # BATS needs a silent round
        assert list(result.profile.choices) == [0, 0, 0]

    def test_initial_profile_not_mutated(self, algo_cls, shanghai_game):
        initial = StrategyProfile(shanghai_game, [0] * shanghai_game.num_users)
        snapshot = initial.choices.copy()
        algo_cls(seed=1).run(shanghai_game, initial=initial)
        assert np.array_equal(initial.choices, snapshot)

    def test_history_recording(self, algo_cls, fig1_game):
        result = algo_cls(
            seed=0, config=RunConfig(record_history=True)
        ).run(fig1_game)
        assert result.potential_history is not None
        assert result.profit_history.shape[1] == fig1_game.num_users

    def test_history_disabled(self, algo_cls, fig1_game):
        result = algo_cls(
            seed=0, config=RunConfig(record_history=False)
        ).run(fig1_game)
        assert result.potential_history is None

    def test_wrong_game_initial_rejected(self, algo_cls, fig1_game, rng):
        other = random_game(rng)
        initial = StrategyProfile(other, [0] * other.num_users)
        with pytest.raises(ValueError):
            algo_cls(seed=0).run(fig1_game, initial=initial)


class TestMaxSlots:
    def test_cap_respected(self, shanghai_game):
        result = DGRN(seed=3, config=RunConfig(max_slots=2)).run(shanghai_game)
        assert result.decision_slots <= 2

    def test_not_converged_flag(self, shanghai_game):
        # With an absurdly small cap the run typically doesn't converge.
        result = DGRN(seed=3, config=RunConfig(max_slots=1)).run(shanghai_game)
        if result.decision_slots == 1:
            assert not result.converged


class TestDeterminism:
    @pytest.mark.parametrize("algo_cls", DYNAMICS)
    def test_same_seed_same_outcome(self, algo_cls, shanghai_game):
        a = algo_cls(seed=11).run(shanghai_game)
        b = algo_cls(seed=11).run(shanghai_game)
        assert np.array_equal(a.profile.choices, b.profile.choices)
        assert a.decision_slots == b.decision_slots


class TestOrdering:
    """The paper's convergence-speed ordering (Figs. 4-5), on average."""

    def test_muun_not_slower_than_dgrn(self, rng):
        muun_total = dgrn_total = 0
        for trial in range(12):
            g = random_game(rng, max_users=6, max_routes=4, max_tasks=8)
            initial = StrategyProfile.random(g, rng)
            muun_total += MUUN(seed=trial).run(g, initial=initial).decision_slots
            dgrn_total += DGRN(seed=trial).run(g, initial=initial).decision_slots
        assert muun_total <= dgrn_total

    def test_bats_not_faster_than_dgrn(self, rng):
        bats_total = dgrn_total = 0
        for trial in range(12):
            g = random_game(rng, max_users=6, max_routes=4, max_tasks=8)
            initial = StrategyProfile.random(g, rng)
            bats_total += BATS(seed=trial).run(g, initial=initial).decision_slots
            dgrn_total += DGRN(seed=trial).run(g, initial=initial).decision_slots
        assert bats_total >= dgrn_total
