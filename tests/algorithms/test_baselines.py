"""Tests for RRN, GreedyCentralized, BATS specifics, and the registry."""

import numpy as np
import pytest

from repro.algorithms import (
    ALGORITHM_REGISTRY,
    BATS,
    CORN,
    GreedyCentralized,
    RRN,
    make_allocator,
)
from repro.core import StrategyProfile
from repro.core.profit import total_profit

from tests.helpers import random_game


class TestRRN:
    def test_zero_slots_no_moves(self, shanghai_game):
        res = RRN(seed=0).run(shanghai_game)
        assert res.decision_slots == 0
        assert res.moves == []
        assert res.converged

    def test_uses_initial_when_given(self, fig1_game):
        initial = StrategyProfile(fig1_game, [1, 0, 1])
        res = RRN(seed=0).run(fig1_game, initial=initial)
        assert list(res.profile.choices) == [1, 0, 1]

    def test_random_selection_varies(self, shanghai_game):
        choices = {
            tuple(RRN(seed=s).run(shanghai_game).profile.choices.tolist())
            for s in range(8)
        }
        assert len(choices) > 1


class TestGreedy:
    def test_between_random_mean_and_optimal(self, rng):
        # Greedy should never beat CORN and should be a valid profile.
        for trial in range(8):
            g = random_game(rng, max_users=5)
            greedy = GreedyCentralized(seed=trial).run(g)
            opt = CORN(seed=trial).run(g)
            assert greedy.total_profit <= opt.total_profit + 1e-9
            greedy.profile.validate()

    def test_assigns_every_user_once(self, shanghai_game):
        res = GreedyCentralized(seed=0).run(shanghai_game)
        assert res.decision_slots == shanghai_game.num_users

    def test_single_user_optimal(self):
        from repro.core import RouteNavigationGame

        g = RouteNavigationGame.from_coverage(
            [[[0], [1]]], base_rewards=[3.0, 11.0]
        )
        res = GreedyCentralized(seed=0).run(g)
        assert res.profile.route_of(0) == 1


class TestBATS:
    def test_slots_count_activations(self, fig1_game):
        # Starting at a NE still costs a full silent round to detect.
        initial = StrategyProfile(fig1_game, [0, 0, 0])
        res = BATS(seed=0).run(fig1_game, initial=initial)
        assert res.decision_slots == fig1_game.num_users

    def test_moves_subset_of_slots(self, shanghai_game):
        res = BATS(seed=1).run(shanghai_game)
        assert len(res.moves) <= res.decision_slots

    def test_round_robin_covers_all_users(self, shanghai_game):
        res = BATS(seed=2).run(shanghai_game)
        # Every user is activated at least once before termination.
        assert res.decision_slots >= shanghai_game.num_users


class TestRegistry:
    def test_all_names_resolve(self):
        for name in ALGORITHM_REGISTRY:
            algo = make_allocator(name, seed=0)
            assert algo.name == name

    def test_case_insensitive(self):
        assert make_allocator("dgrn", seed=0).name == "DGRN"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            make_allocator("SGD")

    def test_registry_complete(self):
        assert set(ALGORITHM_REGISTRY) == {
            "DGRN", "MUUN", "BRUN", "BUAU", "BATS", "CORN", "RRN", "GREEDY",
            "ASYNC",
        }


class TestResultSummary:
    def test_summary_keys(self, fig1_game):
        res = RRN(seed=0).run(fig1_game)
        s = res.summary()
        assert set(s) == {
            "algorithm", "decision_slots", "total_profit", "converged", "moves"
        }

    def test_total_profit_property(self, fig1_game):
        res = RRN(seed=0).run(fig1_game)
        assert res.total_profit == pytest.approx(total_profit(res.profile))
