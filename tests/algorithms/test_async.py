"""Tests for the asynchronous Poisson-clock best-response extension."""

import numpy as np
import pytest

from repro.algorithms import AsyncBR
from repro.core import StrategyProfile, is_nash_equilibrium
from repro.metrics import convergence_stats

from tests.helpers import random_game


class TestAsyncConvergence:
    def test_reaches_nash_on_fig1(self, fig1_game):
        result = AsyncBR(seed=0).run(fig1_game)
        assert result.converged
        assert list(result.profile.choices) == [0, 0, 0]

    def test_reaches_nash_on_random_games(self, rng):
        for _ in range(10):
            g = random_game(rng)
            result = AsyncBR(seed=rng).run(g)
            assert result.converged
            assert is_nash_equilibrium(result.profile)

    def test_reaches_nash_on_scenario(self, shanghai_game):
        result = AsyncBR(seed=4).run(shanghai_game)
        assert result.converged
        assert is_nash_equilibrium(result.profile)

    def test_potential_monotone(self, shanghai_game):
        result = AsyncBR(seed=4).run(shanghai_game)
        assert convergence_stats(shanghai_game, result).potential_monotone

    def test_virtual_time_positive(self, shanghai_game):
        algo = AsyncBR(seed=4)
        algo.run(shanghai_game)
        assert algo.virtual_time > 0.0

    def test_moves_strictly_improving(self, shanghai_game):
        result = AsyncBR(seed=4).run(shanghai_game)
        assert all(m.gain > 0 for m in result.moves)


class TestHeterogeneousRates:
    def test_fast_user_acts_more(self, shanghai_game):
        m = shanghai_game.num_users
        rates = [1.0] * m
        rates[0] = 50.0  # user 0 ticks ~50x as often
        result = AsyncBR(seed=1, rates=rates).run(shanghai_game)
        assert result.converged
        assert is_nash_equilibrium(result.profile)

    def test_rate_validation(self, fig1_game):
        with pytest.raises(ValueError):
            AsyncBR(seed=0, rates=[1.0]).run(fig1_game)  # wrong length
        with pytest.raises(ValueError):
            AsyncBR(seed=0, rates=[1.0, 0.0, 1.0]).run(fig1_game)

    def test_quiet_window_validation(self):
        with pytest.raises(ValueError):
            AsyncBR(seed=0, quiet_window=0.0)


class TestEquivalenceWithSlottedDynamics:
    def test_same_equilibrium_set_on_small_games(self, rng):
        from repro.core import enumerate_equilibria

        for trial in range(6):
            g = random_game(rng, max_users=4)
            equilibria = set(enumerate_equilibria(g).equilibria)
            result = AsyncBR(seed=trial).run(g)
            assert tuple(int(c) for c in result.profile.choices) in equilibria

    def test_from_equilibrium_no_moves(self, fig1_game):
        initial = StrategyProfile(fig1_game, [0, 0, 0])
        result = AsyncBR(seed=0).run(fig1_game, initial=initial)
        assert result.moves == []
        assert result.converged
