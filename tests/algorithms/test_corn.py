"""Tests for repro.algorithms.corn (exactness, pruning, budget)."""

import numpy as np
import pytest

from repro.algorithms import BUAU, CORN, exhaustive_optimum
from repro.algorithms.corn import CORNBudgetExceeded
from repro.core import StrategyProfile
from repro.core.profit import total_profit

from tests.helpers import random_game


class TestExactness:
    def test_fig1_optimum(self, fig1_game):
        res = CORN(seed=0).run(fig1_game)
        assert res.total_profit == pytest.approx(12.0)
        assert list(res.profile.choices) == [0, 0, 1]

    def test_matches_exhaustive_on_random_games(self, rng):
        for _ in range(40):
            g = random_game(rng, max_users=5, max_routes=3, max_tasks=7)
            _, opt = exhaustive_optimum(g)
            res = CORN(seed=0).run(g)
            assert res.total_profit == pytest.approx(opt, abs=1e-8)

    def test_dominates_every_nash(self, rng):
        for trial in range(10):
            g = random_game(rng, max_users=5)
            opt = CORN(seed=trial).run(g).total_profit
            ne = BUAU(seed=trial).run(g).total_profit
            assert opt >= ne - 1e-9

    def test_user_permutation_mapped_back(self, rng):
        # Heterogeneous route counts force the internal permutation path.
        from repro.core import RouteNavigationGame

        g = RouteNavigationGame.from_coverage(
            [[[0], [1]], [[0]], [[1], [0], []]],
            base_rewards=[10.0, 6.0],
        )
        res = CORN(seed=0).run(g)
        _, opt = exhaustive_optimum(g)
        assert res.total_profit == pytest.approx(opt)
        # Returned profile indexes the caller's game, not the permuted one.
        assert total_profit(StrategyProfile(g, res.profile.choices)) == pytest.approx(opt)


class TestSearchMechanics:
    def test_node_budget_raises(self, shanghai_game):
        with pytest.raises(CORNBudgetExceeded):
            CORN(seed=0, node_budget=1).run(shanghai_game)

    def test_node_counter_reset_between_runs(self, fig1_game):
        algo = CORN(seed=0)
        algo.run(fig1_game)
        first = algo.nodes_expanded
        algo.run(fig1_game)
        assert algo.nodes_expanded == first

    def test_scenario_moderate_size(self, shanghai_game):
        # 15 users: should complete comfortably within the default budget.
        res = CORN(seed=0).run(shanghai_game)
        ne = BUAU(seed=0).run(shanghai_game)
        assert res.total_profit >= ne.total_profit - 1e-9

    def test_result_is_converged_no_moves(self, fig1_game):
        res = CORN(seed=0).run(fig1_game)
        assert res.converged
        assert res.decision_slots == 0
        assert res.moves == []

    def test_single_user_picks_best_route(self):
        from repro.core import RouteNavigationGame

        g = RouteNavigationGame.from_coverage(
            [[[0], [1]]], base_rewards=[5.0, 9.0]
        )
        res = CORN(seed=0).run(g)
        assert res.profile.route_of(0) == 1

    def test_ordering_ablation_same_optimum(self, rng):
        for trial in range(8):
            g = random_game(rng, max_users=5)
            ordered = CORN(seed=trial, order_users=True)
            natural = CORN(seed=trial, order_users=False)
            a = ordered.run(g).total_profit
            b = natural.run(g).total_profit
            assert a == pytest.approx(b, abs=1e-8)

    def test_ordering_prunes_in_aggregate(self):
        # The most-constrained-first heuristic can lose on individual
        # instances; across a batch it prunes by an order of magnitude.
        from repro.scenario import ScenarioConfig, build_scenario

        ordered_total = natural_total = 0
        for seed in (11, 23, 42, 7, 99):
            game = build_scenario(
                ScenarioConfig(city="shanghai", n_users=12, n_tasks=30,
                               seed=seed)
            ).game
            o = CORN(seed=0, order_users=True)
            o.run(game)
            ordered_total += o.nodes_expanded
            n = CORN(seed=0, order_users=False)
            n.run(game)
            natural_total += n.nodes_expanded
        assert ordered_total < natural_total
