"""Tests for PUU selection (Algorithm 3) and MUUN specifics."""

import pytest

from repro.algorithms import MUUN
from repro.algorithms.muun import puu_select
from repro.core.responses import UpdateProposal


def prop(user, tau, tasks):
    return UpdateProposal(
        user=user, new_route=0, gain=tau, tau=tau, touched_tasks=frozenset(tasks)
    )


class TestPuuSelect:
    def test_disjoint_sets_all_granted(self):
        props = [prop(0, 1.0, {0}), prop(1, 2.0, {1}), prop(2, 0.5, {2})]
        granted = puu_select(props)
        assert {p.user for p in granted} == {0, 1, 2}

    def test_conflicting_sets_pick_best_delta(self):
        # user 1: delta = 3/2 = 1.5; user 0: delta = 1.0 -> user 1 wins task 0.
        props = [prop(0, 1.0, {0}), prop(1, 3.0, {0, 1})]
        granted = puu_select(props)
        assert [p.user for p in granted] == [1]

    def test_delta_ordering_not_tau(self):
        # user 0: tau 2 over 4 tasks (delta 0.5); user 1: tau 1 over 1 task
        # (delta 1.0).  They conflict on task 0 -> user 1 granted first.
        props = [prop(0, 2.0, {0, 1, 2, 3}), prop(1, 1.0, {0})]
        granted = puu_select(props)
        assert granted[0].user == 1

    def test_granted_sets_pairwise_disjoint(self):
        props = [
            prop(0, 1.0, {0, 1}),
            prop(1, 1.0, {1, 2}),
            prop(2, 1.0, {2, 3}),
            prop(3, 1.0, {3, 4}),
        ]
        granted = puu_select(props)
        seen = set()
        for p in granted:
            assert not (p.touched_tasks & seen)
            seen |= p.touched_tasks

    def test_empty_touched_always_granted(self):
        props = [prop(0, 1.0, {0}), prop(1, 0.1, set()), prop(2, 0.1, set())]
        granted = puu_select(props)
        assert {p.user for p in granted} >= {1, 2}

    def test_deterministic_tie_break_by_user(self):
        props = [prop(2, 1.0, {0}), prop(1, 1.0, {1})]
        granted = puu_select(props)
        assert [p.user for p in granted] == [1, 2]

    def test_granted_set_is_maximal(self, rng):
        # No rejected proposal could be added without a conflict.
        for _ in range(30):
            n = int(rng.integers(1, 12))
            props = [
                prop(
                    i,
                    float(rng.uniform(0.1, 5.0)),
                    set(int(t) for t in rng.choice(10, size=rng.integers(1, 4),
                                                   replace=False)),
                )
                for i in range(n)
            ]
            granted = puu_select(props)
            occupied = set().union(*(p.touched_tasks for p in granted))
            for p in props:
                if p not in granted:
                    assert p.touched_tasks & occupied

    def test_theorem3_guarantee(self):
        # tau / tau_opt >= |B_i'| / (|mu_opt| * B_max) on a crafted case.
        props = [
            prop(0, 4.0, {0, 1}),  # delta 2.0 (PUU picks first)
            prop(1, 3.0, {1, 2}),  # conflicts with 0
            prop(2, 3.0, {0, 3}),  # conflicts with 0
        ]
        granted = puu_select(props)
        tau = sum(p.tau for p in granted)
        # Optimal disjoint set: users 1 and 2 (tau 6).
        tau_opt = 6.0
        b_best = len(granted[0].touched_tasks)
        b_max = 2
        mu_opt = 2
        assert tau / tau_opt >= b_best / (mu_opt * b_max) - 1e-9


class TestMuun:
    def test_parallel_updates_in_one_slot(self, rng):
        from tests.helpers import random_game

        # At least one run should grant >1 user in some slot.
        saw_parallel = False
        for trial in range(20):
            g = random_game(rng, max_users=6, max_tasks=10)
            algo = MUUN(seed=trial)
            algo.run(g)
            if any(k > 1 for k in algo.granted_per_slot):
                saw_parallel = True
                break
        assert saw_parallel

    def test_sort_key_validation(self):
        with pytest.raises(ValueError):
            MUUN(sort_key="random")

    def test_tau_ablation_converges(self, shanghai_game):
        result = MUUN(seed=0, sort_key="tau").run(shanghai_game)
        assert result.converged
        assert result.is_nash

    def test_granted_stats_reset_between_runs(self, fig1_game):
        # The per-slot grant log must describe only the latest run.
        algo = MUUN(seed=0)
        algo.run(fig1_game)
        res = algo.run(fig1_game)
        assert len(algo.granted_per_slot) == res.decision_slots
