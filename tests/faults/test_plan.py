"""Tests for fault plans, compilation, and the deterministic injector."""

import numpy as np
import pytest

from repro.distributed.messages import (
    DecisionReport,
    RouteRecommendation,
    TaskCountUpdate,
    UpdateGrant,
)
from repro.faults import CrashEvent, FaultInjector, FaultPlan


class TestFaultPlanValidation:
    def test_null_plan_is_null(self):
        assert FaultPlan().is_null()
        assert FaultPlan(loss={"TaskCountUpdate": 0.0}).is_null()

    def test_non_null_variants(self):
        assert not FaultPlan(loss={"TaskCountUpdate": 0.1}).is_null()
        assert not FaultPlan(delay={"UpdateGrant": (0.5, 2)}).is_null()
        assert not FaultPlan(duplicate={"DecisionReport": 0.2}).is_null()
        assert not FaultPlan(crashes=(CrashEvent(0, 3, 5),)).is_null()
        assert not FaultPlan(crash_rate=0.1).is_null()

    def test_rejects_non_injectable_type(self):
        with pytest.raises(ValueError, match="not an injectable"):
            FaultPlan(loss={"RouteRecommendation": 0.5})
        with pytest.raises(ValueError, match="not an injectable"):
            FaultPlan(delay={"Termination": (0.5, 2)})

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(loss={"TaskCountUpdate": 1.5})
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=-0.1)

    def test_rejects_zero_delay_window_with_positive_prob(self):
        with pytest.raises(ValueError, match="max_extra_slots"):
            FaultPlan(delay={"UpdateGrant": (0.5, 0)})

    def test_rejects_double_crash(self):
        with pytest.raises(ValueError, match="more than once"):
            FaultPlan(crashes=(CrashEvent(1, 2, 4), CrashEvent(1, 6, 8)))

    def test_crash_event_ordering(self):
        with pytest.raises(ValueError, match="strictly after"):
            CrashEvent(0, at_slot=5, restart_slot=5)
        with pytest.raises(ValueError, match="slot >= 1"):
            CrashEvent(0, at_slot=0)

    def test_max_delay_slots(self):
        assert FaultPlan().max_delay_slots == 0
        plan = FaultPlan(
            delay={"UpdateGrant": (0.5, 3), "DecisionReport": (0.2, 5)}
        )
        assert plan.max_delay_slots == 5
        # Zero-probability entries do not widen the reorder window.
        assert FaultPlan(delay={"UpdateGrant": (0.0, 9)}).max_delay_slots == 0


class TestCompile:
    def test_explicit_events_bucketed_by_slot(self):
        plan = FaultPlan(
            crashes=(CrashEvent(0, 2, 5), CrashEvent(3, 2, 7), CrashEvent(1, 4))
        )
        compiled = plan.compile(num_users=5)
        assert compiled.crashes_at[2] == [0, 3]
        assert compiled.crashes_at[4] == [1]
        assert compiled.restarts_at == {5: [0], 7: [3]}
        assert compiled.permanent_crashes == (1,)
        assert compiled.last_restart_slot() == 7

    def test_rejects_out_of_range_user(self):
        plan = FaultPlan(crashes=(CrashEvent(9, 2, 3),))
        with pytest.raises(ValueError, match="outside"):
            plan.compile(num_users=3)

    def test_sampled_schedule_is_deterministic(self):
        plan = FaultPlan(seed=5, crash_rate=0.5, crash_window=(2, 10))
        a = plan.compile(num_users=20)
        b = plan.compile(num_users=20)
        assert a.events == b.events

    def test_sampled_crashes_stay_in_window(self):
        plan = FaultPlan(seed=1, crash_rate=1.0, crash_window=(3, 6), max_downtime=2)
        compiled = plan.compile(num_users=10)
        assert len(compiled.events) == 10
        for ev in compiled.events.values():
            assert 3 <= ev.at_slot <= 6
            assert ev.at_slot < ev.restart_slot <= ev.at_slot + 2

    def test_explicit_event_wins_over_sampling(self):
        plan = FaultPlan(
            seed=0, crash_rate=1.0, crashes=(CrashEvent(0, 9, 11),)
        )
        compiled = plan.compile(num_users=4)
        assert compiled.events[0].at_slot == 9


class TestFaultInjector:
    def test_null_plan_consumes_no_randomness(self):
        compiled = FaultPlan(seed=3).compile(num_users=2)
        injector = FaultInjector(compiled)
        before = compiled.rng.bit_generator.state["state"]["state"]
        for _ in range(50):
            fate = injector.fate(TaskCountUpdate("p", slot=1, counts={}))
            assert not fate.dropped and fate.delays == (0,)
        after = compiled.rng.bit_generator.state["state"]["state"]
        assert before == after
        assert injector.summary() == {}

    def test_untargeted_types_pass_through(self):
        plan = FaultPlan(seed=0, loss={"TaskCountUpdate": 1.0})
        injector = FaultInjector(plan.compile(num_users=1))
        fate = injector.fate(
            RouteRecommendation("p", routes=((0,),), task_params={})
        )
        assert fate.delays == (0,)

    def test_certain_loss(self):
        plan = FaultPlan(seed=0, loss={"TaskCountUpdate": 1.0})
        injector = FaultInjector(plan.compile(num_users=1))
        fate = injector.fate(TaskCountUpdate("p", slot=1, counts={}))
        assert fate.dropped
        assert injector.summary() == {"loss": 1}

    def test_certain_duplicate_and_delay(self):
        plan = FaultPlan(
            seed=0,
            duplicate={"DecisionReport": 1.0},
            delay={"DecisionReport": (1.0, 3)},
        )
        injector = FaultInjector(plan.compile(num_users=1))
        fate = injector.fate(DecisionReport("u", slot=1, user=0, route=0))
        assert len(fate.delays) == 2
        assert all(1 <= d <= 3 for d in fate.delays)

    def test_fates_replay_bit_identically(self):
        plan = FaultPlan(
            seed=11,
            loss={"UpdateGrant": 0.4},
            delay={"UpdateGrant": (0.5, 4)},
            duplicate={"UpdateGrant": 0.3},
        )
        msgs = [UpdateGrant("p", slot=s) for s in range(200)]
        runs = []
        for _ in range(2):
            injector = FaultInjector(plan.compile(num_users=1))
            runs.append([injector.fate(m).delays for m in msgs])
        assert runs[0] == runs[1]

    def test_crash_schedule_queries(self):
        plan = FaultPlan(crashes=(CrashEvent(2, at_slot=3, restart_slot=6),))
        injector = FaultInjector(plan.compile(num_users=4))
        assert injector.crashes_at(1) == []
        assert injector.restart_pending()
        assert injector.crashes_at(3) == [2]
        assert injector.crashed_users == frozenset({2})
        assert injector.restarts_at(6) == [2]
        assert injector.crashed_users == frozenset()
        assert not injector.restart_pending()

    def test_permanent_crash_never_restart_pending(self):
        plan = FaultPlan(crashes=(CrashEvent(0, at_slot=2),))
        injector = FaultInjector(plan.compile(num_users=1))
        assert not injector.restart_pending()
        injector.crashes_at(2)
        assert not injector.restart_pending()
        assert injector.crashed_users == frozenset({0})
