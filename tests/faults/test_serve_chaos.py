"""Serving-layer chaos: the ``serve_fault_matrix`` envelope + plan replay.

Every infrastructure fault kind (worker SIGKILL, epoch stall, shm attach
failure, spec-publish failure, segment corruption), alone and combined,
must leave a supervised pooled session converging to a verified Nash
whose boundary-ledger potential equals the clean run's (and, through
validate mode, monolithic Eq. 8 at rtol 1e-9).  The plans themselves are
seeded and replayable: compiling the same plan twice yields the same
fate schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import ChaosRunner, ServeFaultPlan, serve_fault_matrix
from repro.faults.serveplan import EpochFate
from repro.serve.session import ServeSession
from tests.helpers import random_game


def small_game(seed=7, users=12, tasks=14):
    return random_game(
        np.random.default_rng(seed),
        max_users=users,
        max_routes=4,
        max_tasks=tasks,
    )


class TestServeFaultMatrix:
    def test_matrix_shape(self):
        cases = serve_fault_matrix()
        names = [c.name for c in cases]
        assert len(names) == len(set(names))
        kinds = {
            "worker-kill", "worker-kill-pipelined", "epoch-stall",
            "attach-failure", "publish-failure", "segment-corruption",
            "quarantine-recovery", "mixed",
        }
        assert set(names) == kinds
        assert all(not c.plan.is_null() for c in cases)
        quarantining = [c for c in cases if c.expect_quarantine]
        assert [c.name for c in quarantining] == ["quarantine-recovery"]

    @pytest.mark.slow
    def test_matrix_converges_to_nash_with_ledger_identity(self):
        """Acceptance: every serve_fault_matrix case converges to a
        verified Nash with the final potential equal to the clean run's
        (ledger identity vs monolithic Eq. 8 checked at every sync)."""
        game = small_game()
        results = ChaosRunner(game).run_serve(serve_fault_matrix())
        failures = [r.describe() for r in results if not r.ok]
        assert not failures, "\n".join(failures)
        for r in results:
            assert r.potential == pytest.approx(
                r.reference_potential, rel=1e-9, abs=0.0
            )
            assert not r.violations

    @pytest.mark.slow
    def test_quarantined_shard_reaches_same_equilibrium(self):
        """The quarantine → inline → probe → re-promote walk alone."""
        # Needs a game whose session runs >= 4 rounds: the stalls land on
        # shard-0 dispatches 1-3, which never happen if round 1 converges.
        game = small_game(users=16, tasks=18)
        (case,) = [
            c for c in serve_fault_matrix() if c.name == "quarantine-recovery"
        ]
        result = ChaosRunner(game).run_serve_case(case)
        assert result.ok, result.describe()
        assert result.supervision["quarantines"] >= 1
        assert result.supervision["promotions"] >= 1
        assert result.supervision["quarantined_shards"] == []
        assert result.injected.get("stall", 0) >= 1


class TestPlanReplay:
    def test_sampled_plan_compiles_identically(self):
        plan = ServeFaultPlan(
            seed=42,
            kill_rate=0.05,
            stall_rate=0.1,
            attach_rate=0.1,
            corrupt_rate=0.05,
            stall_seconds=0.02,
            dispatch_window=(0, 6),
        )
        a, b = plan.compile(3), plan.compile(3)
        assert (a.kills, a.stalls, a.attach, a.corrupt) == (
            b.kills, b.stalls, b.attach, b.corrupt
        )
        # The per-shard fate sequences replay identically too.
        fates_a = [a.epoch_fate(s) for s in range(3) for _ in range(6)]
        fates_b = [b.epoch_fate(s) for s in range(3) for _ in range(6)]
        assert fates_a == fates_b

    def test_different_seeds_diverge(self):
        kw = dict(kill_rate=0.2, stall_rate=0.2, dispatch_window=(0, 8))
        a = ServeFaultPlan(seed=1, **kw).compile(4)
        b = ServeFaultPlan(seed=2, **kw).compile(4)
        assert (a.kills, a.stalls) != (b.kills, b.stalls)

    def test_explicit_events_fire_once_at_their_dispatch(self):
        plan = ServeFaultPlan(seed=0, worker_kills=((1, 2),))
        inj = plan.compile(2)
        fates = [inj.epoch_fate(1) for _ in range(4)]
        assert [f.kill_worker for f in fates] == [False, False, True, False]
        assert all(inj.epoch_fate(0).clean for _ in range(4))
        assert inj.summary() == {"worker_kill": 1}

    def test_fate_clean_property(self):
        assert EpochFate().clean
        assert not EpochFate(stall_seconds=0.1).clean
        assert not EpochFate(kill_worker=True).clean

    def test_plan_validation(self):
        with pytest.raises(Exception):
            ServeFaultPlan(kill_rate=1.5)
        with pytest.raises(Exception):
            ServeFaultPlan(stall_seconds=-1.0)
        with pytest.raises(Exception):
            ServeFaultPlan(dispatch_window=(5, 2))

    def test_null_plan_creates_no_injector(self):
        plan = ServeFaultPlan(seed=3)
        assert plan.is_null()
        game = small_game(seed=13)
        with ServeSession.from_game(
            game, num_shards=2, scheduler="puu", seed=0, processes=2,
            fault_plan=plan,
        ) as sess:
            assert sess.fault_injector is None
            sess.run_to_convergence()
            report = sess.supervision_report()
        assert report is not None and "injected_faults" not in report
