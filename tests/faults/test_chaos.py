"""Tests for the chaos harness and the protocol invariant checker."""

import numpy as np
import pytest

from repro.core.potential import potential
from repro.core.profile import StrategyProfile
from repro.distributed.simulator import DistributedSimulation
from repro.faults import (
    ChaosCase,
    ChaosRunner,
    CrashEvent,
    FaultPlan,
    InvariantChecker,
    bounded_fault_matrix,
)
from tests.helpers import random_game


def small_game(seed=7, users=10, tasks=12):
    return random_game(
        np.random.default_rng(seed),
        max_users=users,
        max_routes=4,
        max_tasks=tasks,
    )


class TestBoundedFaultMatrix:
    def test_matrix_shape_and_envelope(self):
        cases = bounded_fault_matrix(seeds=(0, 1), schedulers=("suu", "puu"))
        assert len(cases) == 6 * 2 * 2
        for case in cases:
            for p in case.plan.loss.values():
                assert p <= 0.3
            for prob, extra in case.plan.delay.values():
                assert extra <= 3
            assert case.plan.crash_rate <= 0.2

    def test_names_unique_per_scheduler_seed(self):
        cases = bounded_fault_matrix(seeds=(0,), schedulers=("suu",))
        names = [c.name for c in cases]
        assert len(names) == len(set(names))


class TestChaosRunner:
    def test_bounded_matrix_converges_to_nash(self):
        """Acceptance: inside the envelope every run terminates converged,
        at a Nash profile, with the potential invariant intact."""
        game = small_game()
        report = ChaosRunner(game).run(bounded_fault_matrix(seeds=(0,)))
        assert report.ok, report.summary()
        for res in report.results:
            assert res.outcome.stop_reason == "converged"
            assert not res.violations
        report.raise_if_failures()  # no-op when ok

    def test_failure_report_raises_with_detail(self):
        game = small_game()
        # An unconverged case: too few slots to finish.
        case = ChaosCase(
            name="tiny-budget",
            plan=FaultPlan(seed=0, loss={"TaskCountUpdate": 0.3}),
            max_slots=1,
        )
        report = ChaosRunner(game).run([case])
        if report.ok:  # some games converge in one slot; force the point
            pytest.skip("game converged within one slot")
        assert not report.failures[0].ok
        with pytest.raises(AssertionError, match="tiny-budget"):
            report.raise_if_failures()

    def test_permanent_departure_still_converges(self):
        game = small_game(seed=3, users=8)
        assert game.num_users >= 2
        case = ChaosCase(
            name="departure",
            plan=FaultPlan(
                seed=1,
                crashes=(CrashEvent(user=0, at_slot=2),),
                loss={"TaskCountUpdate": 0.2},
            ),
            seed=5,
        )
        res = ChaosRunner(game).run_case(case)
        assert res.outcome.stop_reason == "converged", res.describe()
        assert res.outcome.permanently_crashed == (0,)
        assert not res.violations

    def test_summary_mentions_every_case(self):
        game = small_game(seed=2, users=6)
        cases = bounded_fault_matrix(seeds=(0,), schedulers=("suu",))[:2]
        report = ChaosRunner(game).run(cases)
        text = report.summary()
        for case in cases:
            assert case.name in text


class TestInvariantChecker:
    def _converged_sim(self, game, **kwargs):
        sim = DistributedSimulation(
            game,
            seed=0,
            fault_plan=FaultPlan(),
            check_invariants=True,
            record_history=False,
            **kwargs,
        )
        out = sim.run()
        return sim, out

    def test_clean_run_has_no_violations(self):
        sim, out = self._converged_sim(small_game())
        assert sim.invariants is not None
        assert sim.invariants.ok
        assert out.stop_reason == "converged"

    def test_potential_history_non_decreasing(self):
        sim, _ = self._converged_sim(small_game(seed=5))
        hist = sim.invariants.potential_history
        assert len(hist) >= 1
        assert all(b >= a - 1e-7 for a, b in zip(hist, hist[1:]))

    def test_mirror_profile_tracks_platform(self):
        sim, out = self._converged_sim(small_game(seed=9))
        mirror = sim.invariants._profile
        assert np.array_equal(mirror.choices, out.profile.choices)
        assert potential(mirror) == pytest.approx(potential(out.profile))

    def test_flags_potential_decreasing_move(self):
        game = small_game(seed=4)
        sim, _ = self._converged_sim(game)
        platform = sim.platform
        checker = InvariantChecker(game)
        checker.start(
            {i: int(sim.invariants._profile.choices[i]) for i in game.users}
        )
        checker._log_pos = len(platform.move_log)
        # Fabricate a move that strictly decreases the potential: at a Nash
        # profile every unilateral deviation has delta <= 0, so any strict
        # route change of a multi-route user that changes phi is harmful.
        from repro.core.potential import potential_delta

        fabricated = None
        for i in game.users:
            cur = checker._profile.route_of(i)
            for r in range(game.num_routes(i)):
                if r != cur and potential_delta(checker._profile, i, r) < -1e-9:
                    fabricated = (99, i, cur, r)
                    break
            if fabricated:
                break
        if fabricated is None:
            pytest.skip("all deviations potential-neutral in this game")
        platform.move_log.append(fabricated)
        checker.on_slot_end(99, platform)
        kinds = {v.invariant for v in checker.violations}
        assert "potential_non_decreasing" in kinds

    def test_raise_if_violations_formats_all(self):
        checker = InvariantChecker(small_game())
        from repro.faults import InvariantViolation

        checker.violations.append(InvariantViolation("x", 1, "first"))
        checker.violations.append(InvariantViolation("y", 2, "second"))
        with pytest.raises(AssertionError, match="first") as exc:
            checker.raise_if_violations()
        assert "second" in str(exc.value)
