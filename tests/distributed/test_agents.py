"""Unit tests for UserAgent and PlatformAgent message handling."""

import numpy as np
import pytest

from repro.core.weights import UserWeights
from repro.distributed.bus import MessageBus
from repro.distributed.messages import (
    DecisionReport,
    RouteAnnotation,
    RouteRecommendation,
    TaskCountUpdate,
    Termination,
    UpdateGrant,
    UpdateRequest,
)
from repro.distributed.platform_agent import PLATFORM, PlatformAgent
from repro.distributed.user_agent import UserAgent


def make_agent(bus=None, seed=0):
    bus = bus if bus is not None else MessageBus()
    agent = UserAgent(
        0, UserWeights(1.0, 1.0, 1.0), bus, np.random.default_rng(seed)
    )
    return agent, bus


def handshake(agent, bus, *, routes, params, detours, congestions):
    bus.post(agent.name, RouteRecommendation(PLATFORM, routes=routes,
                                             task_params=params))
    bus.post(agent.name, RouteAnnotation(PLATFORM, detour_costs=detours,
                                         congestion_costs=congestions))
    agent.process_inbox()


class TestUserAgent:
    def test_initial_decision_reported(self):
        agent, bus = make_agent()
        handshake(agent, bus, routes=((0,), (1,)),
                  params={0: (10.0, 0.0), 1: (5.0, 0.0)},
                  detours=(0.0, 0.0), congestions=(0.0, 0.0))
        msgs = bus.drain(PLATFORM)
        assert len(msgs) == 1
        assert isinstance(msgs[0], DecisionReport)
        assert msgs[0].route == agent.current_route

    def test_candidate_profits_from_local_view(self):
        agent, bus = make_agent()
        handshake(agent, bus, routes=((0,), (1,)),
                  params={0: (10.0, 0.0), 1: (6.0, 0.0)},
                  detours=(0.0, 2.0), congestions=(0.0, 0.0))
        # Counts: the agent alone on its current route's task.
        counts = {0: 0, 1: 0}
        counts[agent.current_route] = 1
        bus.post(agent.name, TaskCountUpdate(PLATFORM, slot=0, counts=counts))
        agent.process_inbox()
        profits = agent._candidate_profits()
        assert profits[0] == pytest.approx(10.0)
        assert profits[1] == pytest.approx(6.0 - 1.0 * 2.0)

    def test_requests_update_when_better_route_exists(self):
        agent, bus = make_agent(seed=3)
        handshake(agent, bus, routes=((0,), (1,)),
                  params={0: (10.0, 0.0), 1: (1.0, 0.0)},
                  detours=(0.0, 0.0), congestions=(0.0, 0.0))
        bus.drain(PLATFORM)
        counts = {0: 0, 1: 0}
        counts[agent.current_route] = 1
        bus.post(agent.name, TaskCountUpdate(PLATFORM, slot=0, counts=counts))
        agent.process_inbox()
        agent.begin_slot(1)
        msgs = bus.drain(PLATFORM)
        if agent.current_route == 0:
            assert msgs == []  # already optimal
        else:
            assert len(msgs) == 1
            req = msgs[0]
            assert isinstance(req, UpdateRequest)
            assert req.tau == pytest.approx(9.0)
            assert req.touched_tasks == {0, 1}

    def test_grant_switches_and_reports(self):
        agent, bus = make_agent(seed=5)
        handshake(agent, bus, routes=((0,), (1,)),
                  params={0: (10.0, 0.0), 1: (1.0, 0.0)},
                  detours=(0.0, 0.0), congestions=(0.0, 0.0))
        bus.drain(PLATFORM)
        counts = {0: 0, 1: 0}
        counts[agent.current_route] = 1
        bus.post(agent.name, TaskCountUpdate(PLATFORM, slot=0, counts=counts))
        agent.process_inbox()
        if agent.current_route == 1:
            agent.begin_slot(1)
            bus.drain(PLATFORM)
            bus.post(agent.name, UpdateGrant(PLATFORM, slot=1))
            agent.process_inbox()
            assert agent.current_route == 0
            reports = bus.drain(PLATFORM)
            assert len(reports) == 1 and reports[0].route == 0

    def test_termination_stops_requests(self):
        agent, bus = make_agent()
        handshake(agent, bus, routes=((0,), (1,)),
                  params={0: (1.0, 0.0), 1: (10.0, 0.0)},
                  detours=(0.0, 0.0), congestions=(0.0, 0.0))
        bus.post(agent.name, Termination(PLATFORM, slot=1))
        agent.process_inbox()
        assert agent.terminated
        agent.begin_slot(2)
        bus.drain(PLATFORM)  # initial report may be queued
        agent.begin_slot(3)
        assert all(
            not isinstance(m, UpdateRequest) for m in bus.drain(PLATFORM)
        )

    def test_grant_without_request_is_noop(self):
        agent, bus = make_agent()
        handshake(agent, bus, routes=((0,),),
                  params={0: (10.0, 0.0)},
                  detours=(0.0,), congestions=(0.0,))
        before = agent.current_route
        bus.post(agent.name, UpdateGrant(PLATFORM, slot=1))
        agent.process_inbox()
        assert agent.current_route == before

    def test_unexpected_message_raises(self):
        agent, bus = make_agent()
        bus.post(agent.name, UpdateRequest("user-9", slot=0, user=9, tau=1.0,
                                           touched_tasks=frozenset()))
        with pytest.raises(TypeError):
            agent.process_inbox()


class TestPlatformAgent:
    def test_recommendations_restricted_to_own_tasks(self, fig1_game):
        bus = MessageBus()
        platform = PlatformAgent(fig1_game, bus, np.random.default_rng(0))
        platform.send_recommendations()
        msgs = bus.drain("user-1")  # u2 only sees task A (id 0)
        rec = [m for m in msgs if isinstance(m, RouteRecommendation)][0]
        assert rec.routes == ((0,),)
        assert set(rec.task_params) == {0}

    def test_apply_reports_maintains_counts(self, fig1_game):
        bus = MessageBus()
        platform = PlatformAgent(fig1_game, bus, np.random.default_rng(0))
        platform.apply_reports([
            DecisionReport("user-0", slot=0, user=0, route=1),
            DecisionReport("user-1", slot=0, user=1, route=0),
        ])
        assert platform.counts[0] == 2  # both on task A
        # user 0 re-decides: moves off A onto B.
        platform.apply_reports([DecisionReport("user-0", slot=1, user=0, route=0)])
        assert platform.counts[0] == 1
        assert platform.counts[1] == 1

    def test_broadcast_counts_restricted(self, fig1_game):
        bus = MessageBus()
        platform = PlatformAgent(fig1_game, bus, np.random.default_rng(0))
        platform.apply_reports(
            [DecisionReport(f"user-{i}", slot=0, user=i, route=0) for i in range(3)]
        )
        platform.broadcast_counts(slot=0)
        msgs = bus.drain("user-1")
        update = [m for m in msgs if isinstance(m, TaskCountUpdate)][0]
        assert set(update.counts) == {0}  # u2 sees only task A

    def test_suu_grants_exactly_one(self, fig1_game):
        bus = MessageBus()
        platform = PlatformAgent(
            fig1_game, bus, np.random.default_rng(0), scheduler="suu"
        )
        reqs = [
            UpdateRequest(f"user-{i}", slot=1, user=i, tau=1.0,
                          touched_tasks=frozenset({i}))
            for i in range(3)
        ]
        granted = platform.grant(1, reqs)
        assert len(granted) == 1

    def test_puu_grants_disjoint(self, fig1_game):
        bus = MessageBus()
        platform = PlatformAgent(
            fig1_game, bus, np.random.default_rng(0), scheduler="puu"
        )
        reqs = [
            UpdateRequest("user-0", slot=1, user=0, tau=4.0,
                          touched_tasks=frozenset({0, 1})),
            UpdateRequest("user-1", slot=1, user=1, tau=1.0,
                          touched_tasks=frozenset({2})),
            UpdateRequest("user-2", slot=1, user=2, tau=3.0,
                          touched_tasks=frozenset({1, 2})),
        ]
        granted = platform.grant(1, reqs)
        assert set(granted) == {0, 1}  # user-2 conflicts with both

    def test_no_requests_no_grant(self, fig1_game):
        bus = MessageBus()
        platform = PlatformAgent(fig1_game, bus, np.random.default_rng(0))
        assert platform.grant(1, []) == []

    def test_terminate_broadcasts(self, fig1_game):
        bus = MessageBus()
        platform = PlatformAgent(fig1_game, bus, np.random.default_rng(0))
        platform.terminate(slot=4)
        assert platform.terminated
        for i in range(3):
            msgs = bus.drain(f"user-{i}")
            assert any(isinstance(m, Termination) for m in msgs)

    def test_unknown_scheduler_rejected(self, fig1_game):
        with pytest.raises(ValueError):
            PlatformAgent(fig1_game, MessageBus(), np.random.default_rng(0),
                          scheduler="lottery")
