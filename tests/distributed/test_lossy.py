"""Tests for the lossy-telemetry extension of the message bus/protocol."""

import numpy as np
import pytest

from repro.distributed import DistributedSimulation
from repro.distributed.bus import MessageBus
from repro.distributed.messages import TaskCountUpdate, Termination


class TestLossyBus:
    def test_drop_prob_validation(self):
        with pytest.raises(ValueError):
            MessageBus(drop_prob=1.5)

    def test_zero_drop_delivers_everything(self):
        bus = MessageBus(drop_prob=0.0)
        for i in range(50):
            bus.post("u", TaskCountUpdate("p", slot=i, counts={}))
        assert bus.pending("u") == 50
        assert bus.total_dropped == 0

    def test_full_drop_loses_droppable_only(self):
        bus = MessageBus(drop_prob=1.0, seed=0)
        bus.post("u", TaskCountUpdate("p", slot=0, counts={}))
        bus.post("u", Termination("p", slot=0))
        assert bus.pending("u") == 1  # Termination is control plane
        assert bus.total_dropped == 1
        assert isinstance(bus.drain("u")[0], Termination)

    def test_partial_drop_rate(self):
        bus = MessageBus(drop_prob=0.3, seed=1)
        for i in range(2000):
            bus.post("u", TaskCountUpdate("p", slot=i, counts={}))
        rate = bus.total_dropped / 2000
        assert 0.25 < rate < 0.35

    def test_dropped_still_counted_as_sent(self):
        bus = MessageBus(drop_prob=1.0, seed=0)
        bus.post("u", TaskCountUpdate("p", slot=0, counts={}))
        assert bus.total_sent == 1


class TestLossyProtocol:
    def test_reliable_baseline_is_nash(self, shanghai_game):
        out = DistributedSimulation(
            shanghai_game, seed=1, drop_prob=0.0, record_history=False
        ).run()
        from repro.core import is_nash_equilibrium

        assert out.converged and is_nash_equilibrium(out.profile)

    @pytest.mark.parametrize("p", [0.2, 0.5])
    def test_lossy_runs_terminate(self, shanghai_game, p):
        out = DistributedSimulation(
            shanghai_game, seed=2, drop_prob=p, record_history=False,
            max_slots=2000,
        ).run()
        # The run ends (either true termination or the slot cap) and the
        # platform's bookkeeping remains a valid profile.
        out.profile.validate()
        assert out.decision_slots <= 2000

    def test_epsilon_gap_degrades_gracefully(self, shanghai_game):
        from repro.core.equilibrium import epsilon_nash_gap

        gaps = {}
        for p in (0.0, 0.6):
            worst = 0.0
            for seed in range(3):
                out = DistributedSimulation(
                    shanghai_game, seed=seed, drop_prob=p,
                    record_history=False, max_slots=2000,
                ).run()
                worst = max(worst, epsilon_nash_gap(out.profile))
            gaps[p] = worst
        assert gaps[0.0] <= 1e-9  # reliable -> exact equilibrium
        # Lossy runs may leave a residual gap (that's the point), which is
        # finite and bounded by the largest single-task reward scale.
        assert gaps[0.6] < 50.0

    def test_validate_local_views_incompatible(self, shanghai_game):
        with pytest.raises(ValueError, match="reliable delivery"):
            DistributedSimulation(
                shanghai_game, drop_prob=0.2, validate_local_views=True
            )


class TestDroppedMessageAccounting:
    """Regression tests for the fig15 dropped-vs-sent confusion: the
    outcome's drop counters must report messages *lost in transit*, not
    the (much larger) number of TaskCountUpdate messages sent."""

    def test_outcome_reports_actual_drops(self, shanghai_game):
        sim = DistributedSimulation(
            shanghai_game, seed=3, drop_prob=0.3, record_history=False,
            max_slots=2000,
        )
        out = sim.run()
        sent_updates = out.message_traffic["TaskCountUpdate"]
        assert out.dropped_messages == sim.bus.total_dropped > 0
        assert out.dropped_by_type == {"TaskCountUpdate": out.dropped_messages}
        # Sent counts include delivered messages — strictly more than drops.
        assert out.dropped_messages < sent_updates
        assert out.mailbox_high_water == sim.bus.mailbox_high_water > 0

    def test_reliable_run_reports_zero_drops(self, shanghai_game):
        out = DistributedSimulation(
            shanghai_game, seed=3, record_history=False
        ).run()
        assert out.dropped_messages == 0
        assert out.dropped_by_type == {}
        assert out.message_traffic["TaskCountUpdate"] > 0

    def test_fig15_worker_uses_drop_counter(self, monkeypatch):
        from repro.experiments import fig15_lossy
        from repro.experiments.common import RepSpec

        monkeypatch.setattr(fig15_lossy, "DROP_PROBS", (0.0, 0.4))
        spec = RepSpec(
            experiment="fig15", city="shanghai", n_users=8, n_tasks=16,
            rep=0, seed=11, algorithms=(),
        )
        rows = fig15_lossy._worker(spec)
        by_p = {r["drop_prob"]: r for r in rows}
        assert by_p[0.0]["dropped_messages"] == 0
        dropped = by_p[0.4]["dropped_messages"]
        assert dropped > 0
        # The old bug reported *sent* TaskCountUpdates; with at least one
        # delivered broadcast per slot the sent count is strictly larger.
        assert dropped < 8 * (by_p[0.4]["decision_slots"] + 1)

    def test_accounting_with_shuffled_service_order(self, shanghai_game):
        sim = DistributedSimulation(
            shanghai_game, seed=5, drop_prob=0.2, record_history=False,
            max_slots=2000, shuffle_service_order=True,
        )
        out = sim.run()
        bus = sim.bus
        assert out.total_messages == bus.total_sent == sum(
            bus.sent_by_type.values()
        )
        assert out.dropped_messages == sum(bus.dropped_by_type.values())
        # Only the droppable telemetry type may be dropped, regardless of
        # the shuffled stepping order.
        assert set(bus.dropped_by_type) <= {"TaskCountUpdate"}
        # After termination every delivered message has been consumed.
        assert all(bus.pending(name) == 0 for name in list(bus._boxes))
