"""Tests for the lossy-telemetry extension of the message bus/protocol."""

import numpy as np
import pytest

from repro.distributed import DistributedSimulation
from repro.distributed.bus import MessageBus
from repro.distributed.messages import TaskCountUpdate, Termination


class TestLossyBus:
    def test_drop_prob_validation(self):
        with pytest.raises(ValueError):
            MessageBus(drop_prob=1.5)

    def test_zero_drop_delivers_everything(self):
        bus = MessageBus(drop_prob=0.0)
        for i in range(50):
            bus.post("u", TaskCountUpdate("p", slot=i, counts={}))
        assert bus.pending("u") == 50
        assert bus.total_dropped == 0

    def test_full_drop_loses_droppable_only(self):
        bus = MessageBus(drop_prob=1.0, seed=0)
        bus.post("u", TaskCountUpdate("p", slot=0, counts={}))
        bus.post("u", Termination("p", slot=0))
        assert bus.pending("u") == 1  # Termination is control plane
        assert bus.total_dropped == 1
        assert isinstance(bus.drain("u")[0], Termination)

    def test_partial_drop_rate(self):
        bus = MessageBus(drop_prob=0.3, seed=1)
        for i in range(2000):
            bus.post("u", TaskCountUpdate("p", slot=i, counts={}))
        rate = bus.total_dropped / 2000
        assert 0.25 < rate < 0.35

    def test_dropped_still_counted_as_sent(self):
        bus = MessageBus(drop_prob=1.0, seed=0)
        bus.post("u", TaskCountUpdate("p", slot=0, counts={}))
        assert bus.total_sent == 1


class TestLossyProtocol:
    def test_reliable_baseline_is_nash(self, shanghai_game):
        out = DistributedSimulation(
            shanghai_game, seed=1, drop_prob=0.0, record_history=False
        ).run()
        from repro.core import is_nash_equilibrium

        assert out.converged and is_nash_equilibrium(out.profile)

    @pytest.mark.parametrize("p", [0.2, 0.5])
    def test_lossy_runs_terminate(self, shanghai_game, p):
        out = DistributedSimulation(
            shanghai_game, seed=2, drop_prob=p, record_history=False,
            max_slots=2000,
        ).run()
        # The run ends (either true termination or the slot cap) and the
        # platform's bookkeeping remains a valid profile.
        out.profile.validate()
        assert out.decision_slots <= 2000

    def test_epsilon_gap_degrades_gracefully(self, shanghai_game):
        from repro.core.equilibrium import epsilon_nash_gap

        gaps = {}
        for p in (0.0, 0.6):
            worst = 0.0
            for seed in range(3):
                out = DistributedSimulation(
                    shanghai_game, seed=seed, drop_prob=p,
                    record_history=False, max_slots=2000,
                ).run()
                worst = max(worst, epsilon_nash_gap(out.profile))
            gaps[p] = worst
        assert gaps[0.0] <= 1e-9  # reliable -> exact equilibrium
        # Lossy runs may leave a residual gap (that's the point), which is
        # finite and bounded by the largest single-task reward scale.
        assert gaps[0.6] < 50.0

    def test_validate_local_views_incompatible(self, shanghai_game):
        with pytest.raises(ValueError, match="reliable delivery"):
            DistributedSimulation(
                shanghai_game, drop_prob=0.2, validate_local_views=True
            )
