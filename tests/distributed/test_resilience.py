"""Tests for the hardened-protocol building blocks: config, retry channel,
leases, crash/rejoin, and the confirmed termination round."""

import numpy as np
import pytest

import repro.obs as obs
from repro.distributed.bus import MessageBus
from repro.distributed.messages import DecisionReport
from repro.distributed.resilience import ReliableChannel, ResilienceConfig
from repro.distributed.simulator import DistributedSimulation
from repro.faults import CrashEvent, FaultPlan
from tests.helpers import random_game


def game(seed=7, users=10, tasks=12):
    return random_game(
        np.random.default_rng(seed), max_users=users, max_routes=4,
        max_tasks=tasks,
    )


class TestResilienceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(lease_slots=0)
        with pytest.raises(ValueError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(backoff_base=2, backoff_cap=1)
        with pytest.raises(ValueError):
            ResilienceConfig(stall_window=0)

    def test_for_plan_raises_lease_to_reorder_window(self):
        plan = FaultPlan(delay={"UpdateGrant": (0.5, 6)})
        cfg = ResilienceConfig.for_plan(plan)
        assert cfg.lease_slots >= plan.max_delay_slots + 2

    def test_for_plan_keeps_wider_lease(self):
        cfg = ResilienceConfig.for_plan(FaultPlan(), lease_slots=9)
        assert cfg.lease_slots == 9


class TestReliableChannel:
    def _channel(self, **cfg):
        bus = MessageBus()
        config = ResilienceConfig(**cfg)
        return ReliableChannel(bus, "user-0", config), bus

    def _msg(self, mid):
        return DecisionReport("user-0", slot=1, user=0, route=0, seq=0, msg_id=mid)

    def test_send_requires_reserved_msg_id(self):
        ch, _ = self._channel()
        with pytest.raises(ValueError, match="msg_id"):
            ch.send("platform", self._msg(-1), slot=1)

    def test_ack_stops_retries(self):
        ch, bus = self._channel()
        ch.send("platform", self._msg(ch.next_id()), slot=1)
        assert ch.pending() == 1
        ch.on_ack(0)
        assert ch.pending() == 0
        assert ch.tick(10) == []
        assert bus.total_redelivered == 0

    def test_retry_uses_capped_exponential_backoff(self):
        ch, bus = self._channel(max_retries=5, backoff_base=1, backoff_cap=4)
        ch.send("platform", self._msg(ch.next_id()), slot=0)
        retry_slots = []
        for slot in range(1, 30):
            before = bus.total_redelivered
            ch.tick(slot)
            if bus.total_redelivered > before:
                retry_slots.append(slot)
            if ch.pending() == 0:
                break
        # next_retry starts at base; gaps then follow min(base*2^k, cap).
        gaps = [b - a for a, b in zip(retry_slots, retry_slots[1:])]
        assert retry_slots[0] == 1
        assert gaps == [2, 4, 4, 4]
        assert ch.retries_sent == 5

    def test_exhaustion_returns_abandoned_message(self):
        ch, _ = self._channel(max_retries=1, backoff_base=1, backoff_cap=1)
        msg = self._msg(ch.next_id())
        ch.send("platform", msg, slot=0)
        abandoned = []
        for slot in range(1, 10):
            abandoned += ch.tick(slot)
        assert abandoned == [msg]
        assert ch.exhausted == 1
        assert ch.pending() == 0

    def test_cancel_drops_without_exhaustion(self):
        ch, _ = self._channel()
        ch.send("platform", self._msg(ch.next_id()), slot=0)
        ch.cancel(0)
        assert ch.pending() == 0
        assert ch.exhausted == 0

    def test_pending_for_filters_by_recipient(self):
        ch, _ = self._channel()
        ch.send("platform", self._msg(ch.next_id()), slot=0)
        assert ch.pending_for("platform") == [0]
        assert ch.pending_for("user-9") == []


class TestLeases:
    def test_lost_grants_revoke_and_do_not_stall(self):
        # Every grant (and its retries) is lost: leases must expire and be
        # revoked, the run keeps cycling requests instead of deadlocking.
        plan = FaultPlan(seed=0, loss={"UpdateGrant": 1.0})
        sim = DistributedSimulation(
            game(), seed=0, fault_plan=plan, max_slots=30,
            record_history=False,
        )
        out = sim.run()
        if out.converged:  # already at equilibrium: nothing was granted
            pytest.skip("game needed no updates")
        assert out.lease_revocations > 0
        # Any lease still outstanding at cutoff must be unexpired — an
        # expired one surviving tick() would be a leak.
        last_slot = 30 - 1
        assert all(
            lease.expiry > last_slot
            for lease in sim.platform.outstanding.values()
        )

    def test_lease_revocation_emits_telemetry(self):
        plan = FaultPlan(seed=0, loss={"UpdateGrant": 1.0})
        with obs.session():
            out = DistributedSimulation(
                game(), seed=0, fault_plan=plan, max_slots=20,
                record_history=False,
            ).run()
            if out.lease_revocations == 0:
                pytest.skip("no revocations under this seed")
            counted = sum(
                obs.REGISTRY.snapshot()
                .counter_values("platform.lease_revocations_total")
                .values()
            )
            assert counted == out.lease_revocations


class TestCrashRejoin:
    def test_crashed_user_rejoins_consistent(self):
        g = game(seed=3)
        plan = FaultPlan(crashes=(CrashEvent(user=0, at_slot=2, restart_slot=4),))
        sim = DistributedSimulation(
            g, seed=1, fault_plan=plan, check_invariants=True,
            record_history=False,
        )
        out = sim.run()
        assert out.stop_reason == "converged"
        assert out.crashes == 1 and out.rejoins >= 1
        agent = sim.users[0]
        assert not agent.crashed and not agent.awaiting_snapshot
        assert agent.rejoined_at is not None
        assert agent.current_route == sim.platform.decisions[0]
        assert sim.invariants.ok, sim.invariants.violations

    def test_crash_wipes_and_snapshot_restores_local_state(self):
        g = game(seed=4)
        sim = DistributedSimulation(g, seed=2, fault_plan=FaultPlan())
        sim.run()
        agent = sim.users[0]
        route_before = agent.current_route
        agent.crash()
        sim.bus.set_crashed(agent.name)
        assert agent.crashed
        sim.bus.set_crashed(agent.name, crashed=False)
        agent.restart()
        assert agent.routes is None and agent.awaiting_snapshot
        # The platform answers the (reliable) rejoin with a snapshot.
        sim.platform.process_inbox()
        agent.process_inbox()
        assert not agent.awaiting_snapshot
        assert agent.current_route == sim.platform.decisions[0] == route_before
        assert agent.known_counts  # counts restored from the snapshot
        assert agent._seq == sim.platform.last_seq.get(0, -1) + 1

    def test_permanent_departure_reported_on_outcome(self):
        g = game(seed=5)
        plan = FaultPlan(crashes=(CrashEvent(user=0, at_slot=2),))
        out = DistributedSimulation(
            g, seed=3, fault_plan=plan, record_history=False
        ).run()
        assert out.permanently_crashed == (0,)
        assert out.stop_reason == "converged"


class TestSimulatorValidation:
    def test_fault_plan_excludes_drop_prob(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            DistributedSimulation(game(), fault_plan=FaultPlan(), drop_prob=0.5)

    def test_fault_plan_excludes_validate_local_views(self):
        with pytest.raises(ValueError, match="check_invariants"):
            DistributedSimulation(
                game(), fault_plan=FaultPlan(), validate_local_views=True
            )

    def test_resilience_requires_fault_plan(self):
        with pytest.raises(ValueError, match="fault_plan"):
            DistributedSimulation(game(), resilience=ResilienceConfig())

    def test_check_invariants_requires_fault_plan(self):
        with pytest.raises(ValueError, match="fault_plan"):
            DistributedSimulation(game(), check_invariants=True)


class TestStopReasonTelemetry:
    def test_run_done_event_carries_stop_reason(self):
        import repro.distributed.simulator as sim_mod

        captured = {}
        g = game(seed=6)
        with obs.session():
            orig = sim_mod._obs_event

            def spy(name, **fields):
                if name == "distributed.run_done":
                    captured.update(fields)
                return orig(name, **fields)

            sim_mod._obs_event = spy
            try:
                out = DistributedSimulation(g, seed=0).run()
            finally:
                sim_mod._obs_event = orig
        assert captured["stop_reason"] == out.stop_reason
        assert captured["converged"] == out.converged
