"""Property tests: the protocol's always-on idempotency layer.

Sequence numbers on :class:`DecisionReport` and the slot-staleness guard
on :class:`TaskCountUpdate` make both endpoints insensitive to message
duplication and reordering — the network may mangle the stream, the
derived state may not change.  Hypothesis drives the mangling.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weights import UserWeights
from repro.distributed.bus import MessageBus
from repro.distributed.messages import (
    DecisionReport,
    RouteAnnotation,
    RouteRecommendation,
    TaskCountUpdate,
)
from repro.distributed.platform_agent import PLATFORM, PlatformAgent
from repro.distributed.user_agent import UserAgent
from tests.helpers import random_game

GAME = random_game(
    np.random.default_rng(1234), max_users=6, max_routes=4, max_tasks=8
)


def _fresh_platform():
    return PlatformAgent(GAME, MessageBus(), np.random.default_rng(0))


def _report_streams(data):
    """One monotone seq'd report stream per user (what agents emit)."""
    streams = {}
    for i in GAME.users:
        n = data.draw(
            st.integers(min_value=1, max_value=5), label=f"len user {i}"
        )
        routes = data.draw(
            st.lists(
                st.integers(0, GAME.num_routes(i) - 1),
                min_size=n,
                max_size=n,
            ),
            label=f"routes user {i}",
        )
        streams[i] = [
            DecisionReport(f"user-{i}", slot=k, user=i, route=r, seq=k)
            for k, r in enumerate(routes)
        ]
    return streams


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_mangled_report_stream_leaves_platform_state_unchanged(data):
    streams = _report_streams(data)
    clean = [rep for i in sorted(streams) for rep in streams[i]]

    reference = _fresh_platform()
    reference.apply_reports(clean)

    # Mangle: duplicate a random subset, then deliver in arbitrary order,
    # split across arbitrarily many apply_reports batches.
    dupes = data.draw(
        st.lists(st.sampled_from(clean), max_size=2 * len(clean)),
        label="duplicates",
    )
    mangled = data.draw(st.permutations(clean + dupes), label="order")
    platform = _fresh_platform()
    while mangled:
        cut = data.draw(
            st.integers(1, len(mangled)), label="batch"
        )
        platform.apply_reports(list(mangled[:cut]))
        mangled = mangled[cut:]

    assert platform.decisions == reference.decisions
    assert np.array_equal(platform.counts, reference.counts)
    assert platform.last_seq == reference.last_seq
    # Counters must equal a recount of the decision view (no drift).
    from repro.core.profile import StrategyProfile

    recount = StrategyProfile(
        GAME, [platform.decisions[i] for i in GAME.users]
    ).counts
    assert np.array_equal(platform.counts, recount)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_mangled_count_updates_converge_to_newest_view(data):
    bus = MessageBus()
    agent = UserAgent(0, UserWeights(1.0, 1.0, 1.0), bus, np.random.default_rng(1))
    bus.post(
        agent.name,
        RouteRecommendation(
            PLATFORM,
            routes=((0,), (1,)),
            task_params={0: (10.0, 0.0), 1: (5.0, 0.0)},
        ),
    )
    bus.post(
        agent.name,
        RouteAnnotation(PLATFORM, detour_costs=(0.0, 0.0),
                        congestion_costs=(0.0, 0.0)),
    )
    agent.process_inbox()
    bus.drain(PLATFORM)  # discard the handshake report

    # One update per slot over the full (fixed) key set — exactly what
    # the platform broadcasts.  The newest slot must win regardless of
    # arrival order or duplication.
    n_slots = data.draw(st.integers(1, 6), label="slots")
    updates = [
        TaskCountUpdate(
            PLATFORM,
            slot=s,
            counts={
                0: data.draw(st.integers(0, 5), label=f"c0@{s}"),
                1: data.draw(st.integers(0, 5), label=f"c1@{s}"),
            },
        )
        for s in range(n_slots)
    ]
    dupes = data.draw(
        st.lists(st.sampled_from(updates), max_size=2 * n_slots),
        label="duplicates",
    )
    mangled = data.draw(st.permutations(updates + dupes), label="order")
    for msg in mangled:
        bus.post(agent.name, msg)
        agent.process_inbox()

    newest = updates[-1]
    assert agent.known_counts == dict(newest.counts)
    assert agent._last_count_slot == newest.slot
    # The compiled local view agrees with the dict view.
    agent._ensure_local()
    for k, v in newest.counts.items():
        pos = int(np.searchsorted(agent._uniq_tasks, k))
        assert agent._counts_vec[pos] == v
