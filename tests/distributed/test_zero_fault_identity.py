"""The hardened protocol with a *null* fault plan must be trajectory-
identical to the paper-faithful simulator.

The resilient machinery (sequence numbers, acks, leases, the confirmed
termination round) is allowed to change *message traffic* but not a
single decision: same RNG draws in the same order, same grant sets, same
final routes, same per-slot profit history.  This pins the robustness
extension as a strict superset of the paper's protocol.
"""

import numpy as np
import pytest

from repro.distributed.simulator import DistributedSimulation
from repro.faults import FaultPlan
from tests.helpers import random_game

N_SEEDS = 34


def _run(game, scheduler, seed, plan):
    return DistributedSimulation(
        game,
        scheduler=scheduler,
        seed=seed,
        fault_plan=plan,
        max_slots=5000,
    ).run()


@pytest.mark.parametrize("scheduler", ["suu", "puu"])
def test_null_plan_bit_identical_across_seeds(scheduler):
    mismatches = []
    for seed in range(N_SEEDS):
        game = random_game(
            np.random.default_rng(seed), max_users=10, max_routes=4, max_tasks=12
        )
        legacy = _run(game, scheduler, seed, None)
        hardened = _run(game, scheduler, seed, FaultPlan())
        same = (
            np.array_equal(legacy.profile.choices, hardened.profile.choices)
            and legacy.decision_slots == hardened.decision_slots
            and legacy.granted_per_slot == hardened.granted_per_slot
            and legacy.converged == hardened.converged
            and legacy.stop_reason == hardened.stop_reason
            and np.array_equal(legacy.profit_history, hardened.profit_history)
        )
        if not same:
            mismatches.append(seed)
    assert not mismatches, f"trajectory diverged for seeds {mismatches}"


def test_null_plan_converges_with_shuffled_service_order():
    # Shuffled stepping draws from the order RNG a different number of
    # times per slot in the two loops, so bit-identity is not promised —
    # but the hardened run must still quiesce at a Nash equilibrium.
    from repro.core.equilibrium import is_nash_equilibrium

    game = random_game(np.random.default_rng(100), max_users=8, max_tasks=10)
    out = DistributedSimulation(
        game, seed=1, shuffle_service_order=True, fault_plan=FaultPlan()
    ).run()
    assert out.converged and out.stop_reason == "converged"
    assert is_nash_equilibrium(out.profile)


def test_hardened_run_reports_zero_fault_accounting():
    game = random_game(np.random.default_rng(5), max_users=6, max_tasks=8)
    out = DistributedSimulation(game, seed=2, fault_plan=FaultPlan()).run()
    assert out.faults_injected == {}
    assert out.crashes == 0
    assert out.rejoins == 0
    assert out.lease_revocations == 0
    assert out.duplicated_messages == 0
    # The reliability layer never needs a retry on a fault-free bus.
    assert out.redelivered_messages == 0


def test_legacy_outcome_stop_reason_fields():
    game = random_game(np.random.default_rng(6), max_users=6, max_tasks=8)
    out = DistributedSimulation(game, seed=3).run()
    assert out.converged and out.stop_reason == "converged"
    capped = DistributedSimulation(game, seed=3, max_slots=1).run()
    if not capped.converged:
        assert capped.stop_reason == "max_slots"
