"""Tests for the message bus and protocol messages."""

import pytest

from repro.distributed.bus import MessageBus
from repro.distributed.messages import (
    DecisionReport,
    TaskCountUpdate,
    Termination,
    UpdateRequest,
)


class TestMessageBus:
    def test_post_and_drain_fifo(self):
        bus = MessageBus()
        bus.post("u", Termination("platform", slot=1))
        bus.post("u", Termination("platform", slot=2))
        msgs = bus.drain("u")
        assert [m.slot for m in msgs] == [1, 2]

    def test_drain_empties(self):
        bus = MessageBus()
        bus.post("u", Termination("platform", slot=1))
        bus.drain("u")
        assert bus.drain("u") == []
        assert bus.pending("u") == 0

    def test_mailboxes_isolated(self):
        bus = MessageBus()
        bus.post("a", Termination("platform", slot=1))
        assert bus.drain("b") == []
        assert bus.pending("a") == 1

    def test_traffic_counters(self):
        bus = MessageBus()
        bus.post("a", Termination("p", slot=1))
        bus.post("a", DecisionReport("a", slot=1, user=0, route=2))
        bus.post("b", Termination("p", slot=1))
        assert bus.total_sent == 3
        assert bus.traffic_summary() == {
            "Termination": 2,
            "DecisionReport": 1,
        }


class TestMessages:
    def test_messages_frozen(self):
        msg = TaskCountUpdate("p", slot=0, counts={1: 2})
        with pytest.raises(AttributeError):
            msg.slot = 5

    def test_update_request_fields(self):
        req = UpdateRequest("user-3", slot=2, user=3, tau=1.5,
                            touched_tasks=frozenset({1, 2}))
        assert req.sender == "user-3"
        assert req.touched_tasks == {1, 2}
