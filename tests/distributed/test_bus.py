"""Tests for the message bus and protocol messages."""

import pytest

from repro.distributed.bus import MessageBus
from repro.distributed.messages import (
    DecisionReport,
    TaskCountUpdate,
    Termination,
    UpdateRequest,
)


class TestMessageBus:
    def test_post_and_drain_fifo(self):
        bus = MessageBus()
        bus.post("u", Termination("platform", slot=1))
        bus.post("u", Termination("platform", slot=2))
        msgs = bus.drain("u")
        assert [m.slot for m in msgs] == [1, 2]

    def test_drain_empties(self):
        bus = MessageBus()
        bus.post("u", Termination("platform", slot=1))
        bus.drain("u")
        assert bus.drain("u") == []
        assert bus.pending("u") == 0

    def test_mailboxes_isolated(self):
        bus = MessageBus()
        bus.post("a", Termination("platform", slot=1))
        assert bus.drain("b") == []
        assert bus.pending("a") == 1

    def test_traffic_counters(self):
        bus = MessageBus()
        bus.post("a", Termination("p", slot=1))
        bus.post("a", DecisionReport("a", slot=1, user=0, route=2))
        bus.post("b", Termination("p", slot=1))
        assert bus.total_sent == 3
        assert bus.traffic_summary() == {
            "Termination": 2,
            "DecisionReport": 1,
        }

    def test_mailbox_high_water(self):
        bus = MessageBus()
        assert bus.mailbox_high_water == 0
        for slot in range(4):
            bus.post("a", Termination("p", slot=slot))
        bus.post("b", Termination("p", slot=0))
        bus.drain("a")
        bus.post("a", Termination("p", slot=9))
        # High-water is sticky: draining does not lower it.
        assert bus.high_water == {"a": 4, "b": 1}
        assert bus.mailbox_high_water == 4


class TestDropAccounting:
    def test_per_type_send_and_drop_counters(self):
        bus = MessageBus(drop_prob=1.0, seed=0)
        for slot in range(5):
            bus.post("u", TaskCountUpdate("p", slot=slot, counts={}))
        bus.post("u", Termination("p", slot=0))
        # Sent counts every transmission, dropped only the lost ones.
        assert bus.sent_by_type == {"TaskCountUpdate": 5, "Termination": 1}
        assert bus.drop_summary() == {"TaskCountUpdate": 5}
        assert bus.total_dropped == 5
        assert bus.pending("u") == 1

    def test_partial_drop_split_is_consistent(self):
        bus = MessageBus(drop_prob=0.4, seed=7)
        for slot in range(500):
            bus.post("u", TaskCountUpdate("p", slot=slot, counts={}))
        dropped = bus.dropped_by_type["TaskCountUpdate"]
        assert dropped == bus.total_dropped > 0
        assert bus.pending("u") == 500 - dropped
        assert bus.sent_by_type["TaskCountUpdate"] == 500

    def test_no_drops_means_empty_drop_summary(self):
        bus = MessageBus()
        bus.post("u", TaskCountUpdate("p", slot=0, counts={}))
        assert bus.drop_summary() == {}

    def test_obs_counters_track_bus_accounting(self):
        import repro.obs as obs

        with obs.session():
            bus = MessageBus(drop_prob=1.0, seed=0)
            for slot in range(3):
                bus.post("u", TaskCountUpdate("p", slot=slot, counts={}))
            bus.post("u", Termination("p", slot=0))
            snap = obs.REGISTRY.snapshot()
        assert snap.counter_values("bus.sent_total", "type") == {
            "TaskCountUpdate": 3.0,
            "Termination": 1.0,
        }
        assert snap.counter_values("bus.dropped_total", "type") == {
            "TaskCountUpdate": 3.0,
        }
        assert snap.counter_values("bus.delivered_total", "type") == {
            "Termination": 1.0,
        }


class TestConstructorFootGuns:
    def test_drop_prob_with_empty_droppable_raises(self):
        # Regression: this configuration used to construct silently and
        # never drop anything — fig15-style sweeps read as "lossless".
        with pytest.raises(ValueError, match="inert"):
            MessageBus(drop_prob=0.5, droppable=())

    def test_seed_without_drop_prob_warns(self):
        with pytest.warns(UserWarning, match="seed is unused"):
            MessageBus(seed=42)

    def test_valid_configs_do_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            MessageBus()
            MessageBus(drop_prob=0.3, seed=1)
            MessageBus(drop_prob=0.0, seed=None)


class TestCrashDelivery:
    def test_crash_purges_mailbox_and_blackholes_arrivals(self):
        bus = MessageBus()
        bus.post("u", Termination("p", slot=0))
        bus.set_crashed("u")
        assert bus.pending("u") == 0
        bus.post("u", Termination("p", slot=1))
        bus.post_reliable("u", Termination("p", slot=2))
        assert bus.pending("u") == 0
        assert bus.dropped_by_type["Termination"] == 3
        bus.set_crashed("u", crashed=False)
        bus.post("u", Termination("p", slot=3))
        assert bus.pending("u") == 1


class TestDelayedDelivery:
    def _delayed_bus(self, extra=2):
        from repro.faults import FaultInjector, FaultPlan

        plan = FaultPlan(seed=0, delay={"TaskCountUpdate": (1.0, extra)})
        return MessageBus(injector=FaultInjector(plan.compile(num_users=1)))

    def test_delayed_message_released_at_due_slot(self):
        bus = self._delayed_bus(extra=1)  # window [1, 1]: due exactly +1
        bus.advance(3)
        bus.post("u", TaskCountUpdate("p", slot=3, counts={}))
        assert bus.pending("u") == 0
        assert bus.in_flight() == 1
        bus.advance(4)
        assert bus.pending("u") == 1
        assert bus.in_flight() == 0

    def test_delayed_message_to_crashed_recipient_is_lost(self):
        bus = self._delayed_bus(extra=1)
        bus.post("u", TaskCountUpdate("p", slot=0, counts={}))
        bus.set_crashed("u")
        bus.advance(1)
        assert bus.pending("u") == 0
        assert bus.dropped_by_type["TaskCountUpdate"] == 1


class TestMessages:
    def test_messages_frozen(self):
        msg = TaskCountUpdate("p", slot=0, counts={1: 2})
        with pytest.raises(AttributeError):
            msg.slot = 5

    def test_update_request_fields(self):
        req = UpdateRequest("user-3", slot=2, user=3, tau=1.5,
                            touched_tasks=frozenset({1, 2}))
        assert req.sender == "user-3"
        assert req.touched_tasks == {1, 2}
