"""End-to-end tests of the distributed protocol (Algorithms 1-3)."""

import numpy as np
import pytest

from repro.core import StrategyProfile, is_nash_equilibrium
from repro.core.profit import all_profits
from repro.distributed import DistributedSimulation

from tests.helpers import random_game


class TestProtocolConvergence:
    @pytest.mark.parametrize("scheduler", ["suu", "puu"])
    def test_reaches_nash(self, scheduler, shanghai_game):
        sim = DistributedSimulation(
            shanghai_game, scheduler=scheduler, seed=1,
            validate_local_views=True,
        )
        out = sim.run()
        assert out.converged
        assert is_nash_equilibrium(out.profile)

    @pytest.mark.parametrize("scheduler", ["suu", "puu"])
    def test_random_games(self, scheduler, rng):
        for _ in range(8):
            g = random_game(rng)
            out = DistributedSimulation(
                g, scheduler=scheduler, seed=int(rng.integers(2**31)),
                validate_local_views=True,
            ).run()
            assert out.converged
            assert is_nash_equilibrium(out.profile)

    def test_unknown_scheduler(self, fig1_game):
        with pytest.raises(ValueError):
            DistributedSimulation(fig1_game, scheduler="fifo")

    @pytest.mark.parametrize("seed", range(4))
    def test_shuffled_service_order_still_nash(self, shanghai_game, seed):
        out = DistributedSimulation(
            shanghai_game, scheduler="puu", seed=seed,
            shuffle_service_order=True, record_history=False,
        ).run()
        assert out.converged
        assert is_nash_equilibrium(out.profile)

    def test_fig1_reaches_known_equilibrium(self, fig1_game):
        # Fig. 1's game has a unique NE: u1:r1, u2:r3, u3:r4.
        out = DistributedSimulation(fig1_game, seed=5).run()
        assert list(out.profile.choices) == [0, 0, 0]


class TestLocalViews:
    def test_agent_profits_match_global(self, shanghai_game):
        sim = DistributedSimulation(shanghai_game, seed=2)
        out = sim.run()
        truth = all_profits(out.profile)
        for agent in sim.users:
            assert agent.profit() == pytest.approx(truth[agent.user_id], abs=1e-9)

    def test_agents_only_know_own_tasks(self, shanghai_game):
        sim = DistributedSimulation(shanghai_game, seed=2)
        sim.run()
        for agent in sim.users:
            visible = {
                int(t)
                for j in range(shanghai_game.num_routes(agent.user_id))
                for t in shanghai_game.covered_tasks(agent.user_id, j)
            }
            assert set(agent.known_counts) <= visible
            assert set(agent.task_params) <= visible

    def test_all_agents_terminated(self, shanghai_game):
        sim = DistributedSimulation(shanghai_game, seed=2)
        sim.run()
        assert all(agent.terminated for agent in sim.users)


class TestTraffic:
    def test_handshake_message_counts(self, fig1_game):
        sim = DistributedSimulation(fig1_game, seed=0)
        out = sim.run()
        m = fig1_game.num_users
        traffic = out.message_traffic
        assert traffic["RouteRecommendation"] == m
        assert traffic["RouteAnnotation"] == m
        assert traffic["Termination"] == m
        # One initial decision report per user, plus one per granted move.
        assert traffic["DecisionReport"] >= m

    def test_grants_bounded_by_requests(self, shanghai_game):
        out = DistributedSimulation(shanghai_game, seed=4).run()
        assert out.message_traffic.get("UpdateGrant", 0) <= out.message_traffic.get(
            "UpdateRequest", 0
        )

    def test_suu_grants_one_per_slot(self, shanghai_game):
        out = DistributedSimulation(shanghai_game, scheduler="suu", seed=4).run()
        assert all(g == 1 for g in out.granted_per_slot)

    def test_puu_can_grant_many(self, shanghai_game):
        out = DistributedSimulation(shanghai_game, scheduler="puu", seed=4).run()
        assert max(out.granted_per_slot, default=0) >= 1

    def test_puu_usually_fewer_slots_than_suu(self):
        # Aggregate over seeds: PUU should not be slower on average.
        from repro.scenario import ScenarioConfig, build_scenario

        game = build_scenario(
            ScenarioConfig(city="roma", n_users=20, n_tasks=40, seed=77)
        ).game
        suu = sum(
            DistributedSimulation(game, scheduler="suu", seed=s).run().decision_slots
            for s in range(5)
        )
        puu = sum(
            DistributedSimulation(game, scheduler="puu", seed=s).run().decision_slots
            for s in range(5)
        )
        assert puu <= suu


class TestHistories:
    def test_profit_history_shape(self, fig1_game):
        out = DistributedSimulation(fig1_game, seed=0).run()
        assert out.profit_history is not None
        assert out.profit_history.shape[1] == fig1_game.num_users
        assert out.profit_history.shape[0] == out.decision_slots + 1

    def test_history_disabled(self, fig1_game):
        out = DistributedSimulation(fig1_game, seed=0, record_history=False).run()
        assert out.profit_history is None

    def test_total_profit_property(self, fig1_game):
        out = DistributedSimulation(fig1_game, seed=0).run()
        assert out.total_profit == pytest.approx(
            float(all_profits(out.profile).sum())
        )


class TestEngineAgreement:
    """The protocol and the in-memory engines sit in the same game: both
    must land on Nash equilibria of identical quality envelopes."""

    def test_equilibrium_potential_close_to_engine(self, shanghai_game):
        from repro.algorithms import DGRN
        from repro.core.potential import potential

        proto = DistributedSimulation(shanghai_game, seed=9).run()
        engine = DGRN(seed=9).run(shanghai_game)
        p1 = potential(proto.profile)
        p2 = potential(engine.profile)
        # Different equilibria are fine; both are local maxima of phi and
        # should be within a modest band of each other.
        assert abs(p1 - p2) / max(abs(p2), 1.0) < 0.25
