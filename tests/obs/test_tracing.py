"""Tests for span tracing: nesting, aggregation, record(), merging."""

import time

import pytest

import repro.obs as obs
from repro.obs.tracing import (
    merge_trace_snapshot,
    raw_spans,
    record,
    reset_tracing,
    span_aggregates,
    trace,
    trace_snapshot,
)


@pytest.fixture(autouse=True)
def clean_tracing():
    reset_tracing()
    yield
    obs.disable()
    reset_tracing()


class TestTrace:
    def test_disabled_returns_null_span(self):
        obs.disable()
        with trace("outer"):
            pass
        assert span_aggregates() == {}

    def test_nested_paths(self):
        obs.enable()
        with trace("outer"):
            with trace("inner"):
                pass
            with trace("inner"):
                pass
        aggs = span_aggregates()
        assert set(aggs) == {"outer", "outer/inner"}
        assert aggs["outer/inner"]["count"] == 2
        assert aggs["outer"]["count"] == 1

    def test_durations_accumulate(self):
        obs.enable()
        with trace("t"):
            time.sleep(0.01)
        agg = span_aggregates()["t"]
        assert agg["wall_seconds"] >= 0.01
        assert agg["min_seconds"] <= agg["max_seconds"]

    def test_span_exposes_duration(self):
        obs.enable()
        with trace("t") as sp:
            pass
        assert sp.wall_seconds >= 0.0 and sp.path == "t"

    def test_stack_unwinds_on_exception(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with trace("outer"):
                raise RuntimeError("boom")
        with trace("after"):
            pass
        assert "after" in span_aggregates()  # not "outer/after"

    def test_raw_spans_capture_attrs(self):
        obs.enable()
        with trace("t", city="roma"):
            pass
        spans = raw_spans()
        assert spans[0]["path"] == "t"
        assert spans[0]["attrs"] == {"city": "roma"}


class TestRecord:
    def test_record_under_current_path(self):
        obs.enable()
        with trace("outer"):
            record("manual", 0.5)
        agg = span_aggregates()["outer/manual"]
        assert agg["count"] == 1
        assert agg["wall_seconds"] == pytest.approx(0.5)

    def test_record_disabled_is_noop(self):
        obs.disable()
        record("manual", 0.5)
        assert span_aggregates() == {}


class TestSnapshotMerge:
    def test_merge_adds_counts(self):
        obs.enable()
        with trace("t"):
            pass
        snap = trace_snapshot()
        reset_tracing()
        merge_trace_snapshot(snap)
        merge_trace_snapshot(snap)
        assert span_aggregates()["t"]["count"] == 2
