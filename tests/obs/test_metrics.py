"""Tests for the metrics registry: counters, gauges, histograms, snapshots."""

import pickle

import pytest

import repro.obs as obs
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.quantiles import Reservoir, quantile


class TestQuantile:
    def test_single_value(self):
        assert quantile([3.0], 0.5) == 3.0

    def test_median_interpolates(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        vals = [5.0, 1.0, 3.0]
        assert quantile(vals, 0.0) == 1.0
        assert quantile(vals, 1.0) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestReservoir:
    def test_keeps_everything_under_cap(self):
        r = Reservoir(10)
        r.extend(range(5))
        assert sorted(r.values) == [0, 1, 2, 3, 4]

    def test_bounded_above_cap(self):
        r = Reservoir(16)
        r.extend(range(1000))
        assert len(r) == 16 and r.seen == 1000

    def test_deterministic(self):
        a, b = Reservoir(8), Reservoir(8)
        a.extend(range(100))
        b.extend(range(100))
        assert a.values == b.values


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_set_and_high_water(self):
        g = Gauge()
        g.set(4.0)
        g.max_of(2.0)
        assert g.value == 4.0
        g.max_of(9.0)
        assert g.value == 9.0


class TestHistogram:
    def test_stats(self):
        h = Histogram()
        for v in (0.002, 0.004, 0.006, 0.2):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(0.212)
        assert h.min == 0.002 and h.max == 0.2
        assert h.mean == pytest.approx(0.053)
        assert h.p50 == pytest.approx(0.005)

    def test_bucket_counts(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1]  # <=1, <=10, overflow

    def test_shares_quantile_impl_with_timer(self):
        from repro.utils.timer import Timer

        laps = [0.01, 0.02, 0.03, 0.04, 0.05]
        h = Histogram()
        t = Timer()
        for v in laps:
            h.observe(v)
        t.laps.extend(laps)
        assert h.p95 == pytest.approx(t.p95)
        assert h.p50 == pytest.approx(t.p50)

    def test_merge_state(self):
        a, b = Histogram(), Histogram()
        a.observe(1.0)
        b.observe(3.0)
        a.merge_state(b.state())
        assert a.count == 2 and a.sum == 4.0 and a.max == 3.0

    def test_merge_rejects_different_buckets(self):
        a = Histogram(buckets=(1.0,))
        b = Histogram(buckets=(2.0,))
        with pytest.raises(ValueError):
            a.merge_state(b.state())

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))


class TestRegistry:
    def test_labeled_series_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("x", type="a").inc()
        reg.counter("x", type="b").inc(2)
        snap = reg.snapshot()
        assert snap.counter_values("x", "type") == {"a": 1.0, "b": 2.0}

    def test_same_labels_same_series(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1, b=2).inc()
        reg.counter("x", b=2, a=1).inc()  # order-insensitive
        assert reg.counter("x", a=1, b=2).value == 2.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_reset_clears(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.snapshot().counters == {}

    def test_snapshot_is_picklable_and_merges(self):
        reg = MetricsRegistry()
        reg.counter("c", type="t").inc(3)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(0.5)
        snap = pickle.loads(pickle.dumps(reg.snapshot()))
        other = MetricsRegistry()
        other.merge_snapshot(snap)
        other.merge_snapshot(snap)
        assert other.counter("c", type="t").value == 6.0
        assert other.gauge("g").value == 5.0
        assert other.histogram("h").count == 2

    def test_snapshot_merge(self):
        a = MetricsRegistry()
        a.counter("c").inc()
        b = MetricsRegistry()
        b.counter("c").inc(2)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.counters["c"][()] == 3.0

    def test_to_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", type="t").inc()
        reg.histogram("h").observe(2.0)
        d = reg.to_dict()
        assert d["counters"]["c"] == [{"labels": {"type": "t"}, "value": 1.0}]
        hist = d["histograms"]["h"][0]
        assert hist["count"] == 1 and hist["p50"] == 2.0
        assert "overflow" in hist["bucket_counts"]
        assert len(hist["bucket_counts"]) == len(DEFAULT_BUCKETS) + 1


class TestDisabledIsNoop:
    def test_instrumented_run_records_nothing_when_disabled(self, fig1_game):
        from repro.algorithms import DGRN

        obs.disable()
        obs.reset()
        DGRN(seed=0).run(fig1_game)
        snap = obs.REGISTRY.snapshot()
        assert snap.counters == {} and snap.histograms == {}
        assert obs.span_aggregates() == {}

    def test_session_restores_disabled_state(self, fig1_game):
        from repro.algorithms import DGRN

        assert not obs.enabled()
        with obs.session():
            assert obs.enabled()
            DGRN(seed=0).run(fig1_game)
            assert obs.REGISTRY.counter("allocator.slots_total",
                                        algorithm="DGRN").value > 0
        assert not obs.enabled()


class TestCoreKernelMetrics:
    """The CSR kernels report evaluations and wall time when enabled."""

    def test_candidate_eval_counter_and_kernel_histogram(self, fig1_game):
        from repro.core import StrategyProfile
        from repro.core.potential import potential_delta
        from repro.core.profit import candidate_profits

        with obs.session():
            profile = StrategyProfile(fig1_game, [0, 0, 0])
            candidate_profits(profile, 0)
            candidate_profits(profile, 2)
            potential_delta(profile, 0, 1)
            snap = obs.REGISTRY.snapshot()
            # User 0 and user 2 both have 2 routes: 4 evaluations.
            assert snap.counter_values("core.candidate_eval_total")[()] == 4
            hists = snap.histograms["core.kernel_seconds"]
            assert hists[(("kernel", "candidate_profits"),)]["count"] == 2
            assert hists[(("kernel", "potential_delta"),)]["count"] == 1

    def test_kernels_record_nothing_when_disabled(self, fig1_game):
        from repro.core import StrategyProfile
        from repro.core.profit import candidate_profits

        obs.disable()
        obs.reset()
        candidate_profits(StrategyProfile(fig1_game, [0, 0, 0]), 0)
        snap = obs.REGISTRY.snapshot()
        assert snap.counters == {} and snap.histograms == {}


class TestProposalSweepMetrics:
    """The batched sweep reports wall time and dirty-set size."""

    def test_sweep_histograms_recorded(self, fig1_game):
        from repro.algorithms import DGRN

        with obs.session():
            DGRN(seed=0).run(fig1_game)
            snap = obs.REGISTRY.snapshot()
            sweeps = snap.histograms["allocator.sweep_seconds"][()]
            batches = snap.histograms["allocator.batch_size"][()]
            # batch_size is observed every slot; sweep_seconds only when
            # the dirty set is non-empty (at least slot 0: everyone).
            assert 1 <= sweeps["count"] <= batches["count"]
            assert batches["max"] == fig1_game.num_users
            assert sweeps["sum"] >= 0.0
