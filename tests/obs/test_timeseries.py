"""Tests for the bounded time-series store: ring eviction, labeled
series, picklable snapshot/merge (including across spawn-pool workers)."""

from __future__ import annotations

import os
import pickle

import pytest

import repro.obs as obs
from repro.experiments.runner import repeat_map
from repro.obs.timeseries import DEFAULT_CAP, Series, TimeSeriesStore


class TestSeries:
    def test_append_and_read(self):
        s = Series(cap=8)
        s.append(0, 1.5)
        s.append(1, 2.5)
        assert len(s) == 2
        assert s.samples() == [(0.0, 1.5), (1.0, 2.5)]
        assert s.values() == [1.5, 2.5]
        assert s.last == 2.5

    def test_empty_last_is_none(self):
        assert Series().last is None

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            Series(cap=0)

    def test_ring_evicts_oldest_and_counts(self):
        s = Series(cap=3)
        for t in range(5):
            s.append(t, float(t))
        assert len(s) == 3
        assert s.evicted == 2
        assert s.samples() == [(2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]

    def test_merge_sorts_by_time(self):
        a, b = Series(cap=10), Series(cap=10)
        a.append(0, 1.0)
        a.append(2, 3.0)
        b.append(1, 2.0)
        a.merge_state(b.state())
        assert a.samples() == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]

    def test_merge_is_stable_on_ties(self):
        a, b = Series(cap=10), Series(cap=10)
        a.append(5, 1.0)
        b.append(5, 2.0)
        a.merge_state(b.state())
        # Existing sample wins the tie (comes first).
        assert a.samples() == [(5.0, 1.0), (5.0, 2.0)]

    def test_merge_reclips_to_cap_and_adds_evictions(self):
        a, b = Series(cap=3), Series(cap=3)
        for t in range(4):
            a.append(t, float(t))      # evicts 1
        for t in range(4, 9):
            b.append(t, float(t))      # evicts 2
        a.merge_state(b.state())
        assert len(a) == 3
        # 1 (a) + 2 (b) + 3 dropped by the re-clip of 6 merged samples.
        assert a.evicted == 6
        assert a.samples() == [(6.0, 6.0), (7.0, 7.0), (8.0, 8.0)]

    def test_state_is_picklable_plain_data(self):
        s = Series(cap=4)
        s.append(1, 2.0)
        state = pickle.loads(pickle.dumps(s.state()))
        assert state == {"cap": 4, "evicted": 0, "samples": [[1.0, 2.0]]}


class TestTimeSeriesStore:
    def test_record_and_get(self):
        store = TimeSeriesStore()
        store.record("m", 0, 1.0)
        store.record("m", 1, 2.0)
        assert store.get("m") == [(0.0, 1.0), (1.0, 2.0)]
        assert store.get("missing") == []

    def test_labels_separate_series(self):
        store = TimeSeriesStore()
        store.record("epoch", 0, 1.0, shard=0)
        store.record("epoch", 0, 9.0, shard=1)
        assert store.get("epoch", shard=0) == [(0.0, 1.0)]
        assert store.get("epoch", shard=1) == [(0.0, 9.0)]

    def test_default_cap(self):
        assert TimeSeriesStore().series("x").cap == DEFAULT_CAP

    def test_cap_fixed_at_creation(self):
        store = TimeSeriesStore()
        store.series("x", cap=7)
        assert store.series("x", cap=99).cap == 7

    def test_iter_yields_every_series(self):
        store = TimeSeriesStore()
        store.record("a", 0, 1.0)
        store.record("b", 0, 1.0, shard=2)
        names = sorted(name for name, _, _ in store)
        assert names == ["a", "b"]

    def test_reset(self):
        store = TimeSeriesStore()
        store.record("a", 0, 1.0)
        store.reset()
        assert store.get("a") == []

    def test_snapshot_merge_between_stores(self):
        a, b = TimeSeriesStore(), TimeSeriesStore()
        a.record("m", 0, 1.0, shard=0)
        b.record("m", 1, 2.0, shard=0)
        b.record("m", 0, 5.0, shard=1)
        a.merge_snapshot(pickle.loads(pickle.dumps(b.snapshot())))
        assert a.get("m", shard=0) == [(0.0, 1.0), (1.0, 2.0)]
        assert a.get("m", shard=1) == [(0.0, 5.0)]

    def test_merge_preserves_worker_cap(self):
        a, b = TimeSeriesStore(), TimeSeriesStore()
        b.series("m", cap=2)
        for t in range(5):
            b.record("m", t, float(t))
        a.merge_snapshot(b.snapshot())
        assert a.series("m").cap == 2
        assert len(a.series("m")) == 2

    def test_to_dict_shape(self):
        store = TimeSeriesStore()
        store.record("m", 0, 1.0, shard=3)
        doc = store.to_dict()
        assert doc == {
            "m": [
                {
                    "labels": {"shard": "3"},
                    "cap": DEFAULT_CAP,
                    "evicted": 0,
                    "samples": [[0.0, 1.0]],
                }
            ]
        }


class TestSampleGating:
    def test_disabled_is_noop(self):
        obs.disable()
        obs.TIMESERIES.reset()
        obs.sample("gate.check", 0, 1.0)
        assert obs.TIMESERIES.get("gate.check") == []

    def test_enabled_records(self):
        with obs.session():
            obs.sample("gate.check", 0, 1.0, shard=1)
            assert obs.TIMESERIES.get("gate.check", shard=1) == [(0.0, 1.0)]
        assert not obs.enabled()

    def test_reset_clears_timeseries(self):
        with obs.session():
            obs.sample("gate.check", 0, 1.0)
            obs.reset()
            assert obs.TIMESERIES.get("gate.check") == []


def _sampling_worker(spec):
    """Module-level so it pickles under the spawn start method."""
    obs.sample("worker.signal", spec, float(spec * 10), source="pool")
    return [{"spec": spec}]


class TestCrossProcessMerge:
    def test_label_snapshot_relabels_timeseries(self):
        with obs.session():
            obs.sample("m", 0, 1.0)
            obs.sample("m", 1, 2.0, shard=7)   # existing label wins
            snap = obs.label_snapshot(obs.snapshot(), shard=3)
            obs.reset()
            obs.merge_snapshot(snap)
            assert obs.TIMESERIES.get("m", shard=3) == [(0.0, 1.0)]
            assert obs.TIMESERIES.get("m", shard=7) == [(1.0, 2.0)]

    @pytest.mark.skipif(os.cpu_count() is None or os.cpu_count() < 2,
                        reason="needs >= 2 cores")
    def test_pool_workers_merge_samples(self):
        with obs.session():
            repeat_map(_sampling_worker, list(range(4)), processes=2)
            merged = obs.TIMESERIES.get("worker.signal", source="pool")
            # All four worker samples arrive, merged in time order.
            assert merged == [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]
            # Runner time-series gauges rode along (satellite telemetry).
            assert len(obs.TIMESERIES.get("runner.wall_seconds")) == 1
            assert len(obs.TIMESERIES.get("runner.utilization")) == 1
