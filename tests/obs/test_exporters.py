"""Tests for the Prometheus exporters: text exposition (golden file) and
the background scrape endpoint."""

from __future__ import annotations

import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro.obs as obs
from repro.obs.exporters import ScrapeServer, prometheus_exposition
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesStore

GOLDEN = Path(__file__).parent / "data" / "prometheus_golden.txt"


def _fixture_exposition() -> str:
    """Deterministic registry + store covering every exposition branch."""
    reg = MetricsRegistry()
    reg.counter("serve.rounds_total").inc(7)
    reg.counter("bus.sent_total", type="proposal").inc(3)
    reg.counter("bus.sent_total", type="ack").inc(2)
    reg.gauge("runner.utilization").set(0.75)
    reg.gauge("serve.shard_users", shard=0).set(12)
    reg.gauge("serve.shard_users", shard=1).set(9)
    h = reg.histogram("epoch.seconds", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    store = TimeSeriesStore()
    store.record("serve.nash_residual", 0, 2.5)
    store.record("serve.nash_residual", 1, 0.0)
    store.record("health.epoch_seconds", 3, 0.25, shard=2)
    return prometheus_exposition(reg.snapshot(), timeseries=store.snapshot())


class TestExposition:
    def test_matches_golden_file(self):
        assert _fixture_exposition() == GOLDEN.read_text(encoding="utf-8")

    def test_dotted_names_become_underscores(self):
        text = _fixture_exposition()
        assert "serve_rounds_total 7" in text
        assert "serve.rounds_total" not in text

    def test_labels_render(self):
        text = _fixture_exposition()
        assert 'bus_sent_total{type="proposal"} 3' in text

    def test_histogram_cumulative_buckets(self):
        text = _fixture_exposition()
        assert 'epoch_seconds_bucket{le="0.1"} 1' in text
        assert 'epoch_seconds_bucket{le="1.0"} 2' in text
        assert 'epoch_seconds_bucket{le="+Inf"} 3' in text
        assert "epoch_seconds_count 3" in text

    def test_timeseries_export_latest_value(self):
        text = _fixture_exposition()
        # Latest sample only, as a gauge.
        assert "serve_nash_residual 0.0" in text
        assert "serve_nash_residual 2.5" not in text
        assert 'health_epoch_seconds{shard="2"} 0.25' in text

    def test_timeseries_can_be_excluded(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        text = prometheus_exposition(reg.snapshot(), include_timeseries=False)
        assert text == "# TYPE a counter\na 1.0\n"

    def test_digit_prefix_guarded(self):
        reg = MetricsRegistry()
        reg.counter("2fast").inc()
        assert "_2fast 1" in prometheus_exposition(
            reg.snapshot(), include_timeseries=False
        )


class TestScrapeServer:
    def test_serves_live_registry(self):
        with obs.session(), ScrapeServer() as srv:
            obs.counter("scrape.test_total").inc(4)
            obs.sample("scrape.curve", 0, 1.5)
            with urllib.request.urlopen(srv.url, timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith("text/plain")
                body = resp.read().decode("utf-8")
            assert "scrape_test_total 4" in body
            assert "scrape_curve 1.5" in body

    def test_unknown_path_404(self):
        with ScrapeServer() as srv:
            url = srv.url.replace("/metrics", "/nope")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(url, timeout=5)
            assert err.value.code == 404

    def test_port_requires_running_server(self):
        srv = ScrapeServer()
        with pytest.raises(RuntimeError):
            srv.port

    def test_stop_is_idempotent(self):
        srv = ScrapeServer().start()
        srv.stop()
        srv.stop()
