"""Tests for the structured event log (JSON lines over stdlib logging)."""

import io
import json
import logging

import pytest

import repro.obs as obs
from repro.obs.events import configure_logging, event, reset_logging


@pytest.fixture(autouse=True)
def clean_logging():
    yield
    reset_logging()
    obs.disable()


class TestEvent:
    def test_json_lines_to_stream(self):
        obs.enable()
        stream = io.StringIO()
        configure_logging("INFO", stream=stream)
        event("run.start", experiment="fig3", repetitions=2)
        event("run.done", rows=10)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "run.start"
        assert first["experiment"] == "fig3"
        assert first["repetitions"] == 2
        assert first["level"] == "info"
        assert "ts" in first

    def test_json_file_one_object_per_line(self, tmp_path):
        obs.enable()
        path = tmp_path / "events.jsonl"
        configure_logging("INFO", json_path=str(path))
        for i in range(3):
            event("tick", index=i)
        reset_logging()
        parsed = [json.loads(line) for line in path.read_text().splitlines()]
        assert [p["index"] for p in parsed] == [0, 1, 2]

    def test_disabled_emits_nothing(self):
        obs.disable()
        stream = io.StringIO()
        configure_logging("DEBUG", stream=stream)
        event("quiet")
        assert stream.getvalue() == ""

    def test_level_filtering(self):
        obs.enable()
        stream = io.StringIO()
        configure_logging("WARNING", stream=stream)
        event("info.event")  # default INFO, filtered
        event("warn.event", level=logging.WARNING)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "warn.event"

    def test_reconfigure_replaces_handlers(self):
        obs.enable()
        s1, s2 = io.StringIO(), io.StringIO()
        configure_logging("INFO", stream=s1)
        configure_logging("INFO", stream=s2)
        event("only.second")
        assert s1.getvalue() == ""
        assert "only.second" in s2.getvalue()
