"""Tests for repro.geometry.polyline."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.polyline import (
    point_to_segment_distance,
    polyline_length,
    polyline_point_distance,
    resample_polyline,
)

L_SHAPE = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0]])


class TestPolylineLength:
    def test_l_shape(self):
        assert polyline_length(L_SHAPE) == pytest.approx(2.0)

    def test_single_point(self):
        assert polyline_length(np.array([[1.0, 2.0]])) == 0.0

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            polyline_length(np.array([1.0, 2.0, 3.0]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            polyline_length(np.zeros((0, 2)))


class TestPointToSegment:
    def test_perpendicular(self):
        d = point_to_segment_distance(
            np.array([0.5]), np.array([1.0]), 0.0, 0.0, 1.0, 0.0
        )
        assert float(d[0]) == pytest.approx(1.0)

    def test_beyond_endpoint_clamps(self):
        d = point_to_segment_distance(
            np.array([2.0]), np.array([0.0]), 0.0, 0.0, 1.0, 0.0
        )
        assert float(d[0]) == pytest.approx(1.0)

    def test_degenerate_segment(self):
        d = point_to_segment_distance(
            np.array([3.0]), np.array([4.0]), 0.0, 0.0, 0.0, 0.0
        )
        assert float(d[0]) == pytest.approx(5.0)


class TestPolylinePointDistance:
    def test_on_line_is_zero(self):
        d = polyline_point_distance(L_SHAPE, np.array([[0.5, 0.0]]))
        assert float(d[0]) == pytest.approx(0.0)

    def test_inside_corner(self):
        d = polyline_point_distance(L_SHAPE, np.array([[0.9, 0.1]]))
        assert float(d[0]) == pytest.approx(0.1)

    def test_multiple_queries(self):
        d = polyline_point_distance(
            L_SHAPE, np.array([[0.0, 1.0], [2.0, 1.0]])
        )
        assert d.shape == (2,)
        assert float(d[0]) == pytest.approx(1.0)
        assert float(d[1]) == pytest.approx(1.0)

    def test_single_vertex_polyline(self):
        d = polyline_point_distance(np.array([[1.0, 1.0]]), np.array([[4.0, 5.0]]))
        assert float(d[0]) == pytest.approx(5.0)

    def test_1d_query_promoted(self):
        d = polyline_point_distance(L_SHAPE, np.array([0.5, 0.5]))
        assert d.shape == (1,)

    @given(st.floats(-5, 5), st.floats(-5, 5))
    def test_vertex_distance_upper_bound(self, px, py):
        # The distance to the polyline is never more than to its vertices.
        d = float(polyline_point_distance(L_SHAPE, np.array([[px, py]]))[0])
        vertex_min = float(np.min(np.hypot(L_SHAPE[:, 0] - px, L_SHAPE[:, 1] - py)))
        assert d <= vertex_min + 1e-9


class TestResample:
    def test_preserves_endpoints(self):
        out = resample_polyline(L_SHAPE, 0.1)
        assert np.allclose(out[0], L_SHAPE[0])
        assert np.allclose(out[-1], L_SHAPE[-1])

    def test_spacing_roughly_uniform(self):
        out = resample_polyline(L_SHAPE, 0.1)
        seg = np.diff(out, axis=0)
        lens = np.hypot(seg[:, 0], seg[:, 1])
        assert lens.max() <= 0.2

    def test_length_preserved_approximately(self):
        out = resample_polyline(L_SHAPE, 0.01)
        # Resampling cuts the corner slightly, never lengthens.
        assert polyline_length(out) == pytest.approx(2.0, abs=0.05)

    def test_bad_spacing(self):
        with pytest.raises(ValueError):
            resample_polyline(L_SHAPE, 0.0)

    def test_single_point_passthrough(self):
        out = resample_polyline(np.array([[1.0, 1.0]]), 0.5)
        assert out.shape == (1, 2)

    def test_zero_length_polyline(self):
        out = resample_polyline(np.array([[1.0, 1.0], [1.0, 1.0]]), 0.5)
        assert out.shape[0] >= 1
