"""Tests for repro.geometry.point."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.point import (
    BoundingBox,
    GeoPoint,
    euclidean,
    haversine_km,
    local_xy_km,
)


class TestGeoPoint:
    def test_valid(self):
        p = GeoPoint(31.2, 121.5)
        assert p.lat == 31.2

    @pytest.mark.parametrize("lat,lon", [(91, 0), (-91, 0), (0, 181), (0, -181)])
    def test_out_of_range(self, lat, lon):
        with pytest.raises(ValueError):
            GeoPoint(lat, lon)

    def test_distance_zero(self):
        p = GeoPoint(10.0, 20.0)
        assert p.distance_km(p) == pytest.approx(0.0)


class TestHaversine:
    def test_known_distance_equator_degree(self):
        # One degree of longitude at the equator is ~111.19 km.
        d = haversine_km(0.0, 0.0, 0.0, 1.0)
        assert d == pytest.approx(111.19, rel=0.01)

    def test_symmetry(self):
        a = haversine_km(31.2, 121.4, 31.3, 121.5)
        b = haversine_km(31.3, 121.5, 31.2, 121.4)
        assert a == pytest.approx(b)

    @given(
        st.floats(-80, 80), st.floats(-170, 170),
        st.floats(-80, 80), st.floats(-170, 170),
    )
    def test_non_negative(self, lat1, lon1, lat2, lon2):
        assert haversine_km(lat1, lon1, lat2, lon2) >= 0.0

    def test_antipodal_near_half_circumference(self):
        d = haversine_km(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(np.pi * 6371.0088, rel=0.001)


class TestLocalXY:
    def test_origin_maps_to_zero(self):
        x, y = local_xy_km(31.2, 121.4, 31.2, 121.4)
        assert float(x) == pytest.approx(0.0)
        assert float(y) == pytest.approx(0.0)

    def test_north_positive_y(self):
        _, y = local_xy_km(31.3, 121.4, 31.2, 121.4)
        assert float(y) > 0

    def test_east_positive_x(self):
        x, _ = local_xy_km(31.2, 121.5, 31.2, 121.4)
        assert float(x) > 0

    def test_matches_haversine_at_city_scale(self):
        x, y = local_xy_km(31.25, 121.45, 31.2, 121.4)
        planar = float(np.hypot(x, y))
        true = haversine_km(31.2, 121.4, 31.25, 121.45)
        assert planar == pytest.approx(true, rel=0.01)

    def test_vectorized(self):
        lats = np.array([31.2, 31.3])
        lons = np.array([121.4, 121.5])
        x, y = local_xy_km(lats, lons, 31.2, 121.4)
        assert x.shape == (2,) and y.shape == (2,)


class TestEuclidean:
    def test_pythagoras(self):
        assert euclidean(0, 0, 3, 4) == pytest.approx(5.0)


class TestBoundingBox:
    def test_properties(self):
        b = BoundingBox(0, 0, 4, 2)
        assert b.width == 4 and b.height == 2
        assert b.center == (2.0, 1.0)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(1, 0, 0, 1)

    def test_contains(self):
        b = BoundingBox(0, 0, 1, 1)
        assert b.contains(0.5, 0.5)
        assert not b.contains(1.5, 0.5)

    def test_clamp(self):
        b = BoundingBox(0, 0, 1, 1)
        assert b.clamp(2.0, -1.0) == (1.0, 0.0)
        assert b.clamp(0.3, 0.7) == (0.3, 0.7)

    def test_sample_inside(self, rng):
        b = BoundingBox(-1, 2, 3, 5)
        pts = b.sample(rng, 200)
        assert pts.shape == (200, 2)
        assert np.all((pts[:, 0] >= -1) & (pts[:, 0] <= 3))
        assert np.all((pts[:, 1] >= 2) & (pts[:, 1] <= 5))

    def test_of_points(self):
        pts = np.array([[0, 1], [2, -1], [1, 0]])
        b = BoundingBox.of_points(pts)
        assert (b.min_x, b.min_y, b.max_x, b.max_y) == (0, -1, 2, 1)

    def test_of_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.of_points(np.zeros((0, 2)))
