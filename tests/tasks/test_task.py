"""Tests for repro.tasks.task (the Eq. 1 reward law)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.tasks.task import (
    Task,
    TaskSet,
    reward,
    reward_share,
    shared_reward_prefix_sum,
)


class TestRewardLaw:
    def test_single_user_gets_base(self):
        assert reward(10.0, 0.5, 1) == pytest.approx(10.0)

    def test_log_growth(self):
        assert reward(10.0, 1.0, math.e.__ceil__()) > 10.0
        assert reward(10.0, 0.7, 4) == pytest.approx(10.0 + 0.7 * math.log(4))

    def test_mu_zero_constant(self):
        assert reward(12.0, 0.0, 7) == pytest.approx(12.0)

    def test_count_below_one_rejected(self):
        with pytest.raises(ValueError):
            reward(10.0, 0.5, 0)

    def test_vectorized(self):
        out = reward(10.0, 0.5, np.array([1, 2, 4]))
        assert out.shape == (3,)
        assert out[0] == pytest.approx(10.0)

    @given(st.floats(5.0, 20.0), st.floats(0.0, 1.0), st.integers(1, 50))
    def test_share_decreasing_when_base_dominates(self, a, mu, x):
        # For a >= mu the per-user share w(x)/x is non-increasing in x.
        s1 = reward_share(a, mu, x)
        s2 = reward_share(a, mu, x + 1)
        assert s2 <= s1 + 1e-12

    def test_share_definition(self):
        assert reward_share(10.0, 0.5, 2) == pytest.approx(
            (10.0 + 0.5 * math.log(2)) / 2
        )


class TestPrefixSum:
    def test_zero_participants(self):
        assert shared_reward_prefix_sum(10.0, 0.5, 0) == 0.0

    def test_one_participant(self):
        assert shared_reward_prefix_sum(10.0, 0.5, 1) == pytest.approx(10.0)

    @given(st.floats(1.0, 20.0), st.floats(0.0, 1.0), st.integers(1, 30))
    def test_matches_manual_sum(self, a, mu, n):
        manual = sum((a + mu * math.log(q)) / q for q in range(1, n + 1))
        assert shared_reward_prefix_sum(a, mu, n) == pytest.approx(manual)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            shared_reward_prefix_sum(10.0, 0.5, -1)


class TestTask:
    def test_methods_delegate(self):
        t = Task(0, 1.0, 2.0, 15.0, 0.3)
        assert t.reward(1) == pytest.approx(15.0)
        assert t.share(3) == pytest.approx((15.0 + 0.3 * math.log(3)) / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Task(0, 0, 0, -5.0, 0.5)
        with pytest.raises(ValueError):
            Task(0, 0, 0, 10.0, 1.5)


class TestTaskSet:
    def make(self, n=4):
        return TaskSet(
            [Task(k, float(k), 0.0, 10.0 + k, 0.1 * k) for k in range(n)]
        )

    def test_requires_dense_ids(self):
        with pytest.raises(ValueError):
            TaskSet([Task(1, 0, 0, 10.0, 0.0)])

    def test_len_getitem_iter(self):
        ts = self.make(3)
        assert len(ts) == 3
        assert ts[1].task_id == 1
        assert [t.task_id for t in ts] == [0, 1, 2]

    def test_attribute_arrays(self):
        ts = self.make(3)
        assert np.allclose(ts.base_rewards, [10, 11, 12])
        assert ts.xy.shape == (3, 2)

    def test_shares_zero_count_is_zero(self):
        ts = self.make(3)
        out = ts.shares(np.array([0, 1, 2]))
        assert out[0] == 0.0
        assert out[1] == pytest.approx(11.0)
        assert out[2] == pytest.approx((12.0 + 0.2 * math.log(2)) / 2)

    def test_shares_shape_check(self):
        with pytest.raises(ValueError):
            self.make(3).shares(np.zeros(2))

    def test_potential_terms_match_prefix_sums(self):
        ts = self.make(4)
        counts = np.array([0, 1, 3, 2])
        out = ts.potential_terms(counts)
        for k in range(4):
            expected = shared_reward_prefix_sum(
                float(ts.base_rewards[k]), float(ts.reward_increments[k]), int(counts[k])
            )
            assert out[k] == pytest.approx(expected)

    def test_potential_terms_negative_counts(self):
        with pytest.raises(ValueError):
            self.make(2).potential_terms(np.array([-1, 0]))

    def test_empty_counts(self):
        ts = self.make(2)
        assert np.allclose(ts.potential_terms(np.zeros(2, dtype=int)), 0.0)
