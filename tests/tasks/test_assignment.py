"""Tests for repro.tasks.assignment."""

import numpy as np
import pytest

from repro.network.builders import grid_city
from repro.network.routing import RoutePlanner
from repro.tasks.assignment import assign_tasks_to_routes, coverage_matrix, route_covers
from repro.tasks.task import Task, TaskSet


@pytest.fixture(scope="module")
def net():
    return grid_city(6, 6, jitter=0.0, diagonal_prob=0.0, seed=0)


@pytest.fixture(scope="module")
def route(net):
    return RoutePlanner(net).recommend(0, 35, 1)[0]


class TestRouteCovers:
    def test_task_on_route_covered(self, net, route):
        x, y = net.node_xy(route.nodes[1])
        tasks = TaskSet([Task(0, x, y, 10.0, 0.0)])
        assert route_covers(net, route, tasks, 0.1) == (0,)

    def test_far_task_not_covered(self, net, route):
        tasks = TaskSet([Task(0, 100.0, 100.0, 10.0, 0.0)])
        assert route_covers(net, route, tasks, 0.3) == ()

    def test_radius_monotone(self, net, route):
        rng = np.random.default_rng(0)
        tasks = TaskSet(
            [
                Task(k, float(x), float(y), 10.0, 0.0)
                for k, (x, y) in enumerate(rng.uniform(0, 2.5, size=(30, 2)))
            ]
        )
        small = set(route_covers(net, route, tasks, 0.2))
        large = set(route_covers(net, route, tasks, 0.6))
        assert small <= large

    def test_empty_tasks(self, net, route):
        from repro.tasks.generator import generate_tasks

        empty = generate_tasks(net, 0, seed=0)
        assert route_covers(net, route, empty, 0.3) == ()

    def test_bad_radius(self, net, route):
        tasks = TaskSet([Task(0, 0.0, 0.0, 10.0, 0.0)])
        with pytest.raises(ValueError):
            route_covers(net, route, tasks, 0.0)


class TestAssign:
    def test_structure_mirrored(self, net):
        planner = RoutePlanner(net)
        route_sets = [planner.recommend(0, 35, 3), planner.recommend(5, 30, 2)]
        tasks = TaskSet([Task(0, 1.0, 1.0, 10.0, 0.0)])
        out = assign_tasks_to_routes(net, route_sets, tasks, coverage_radius_km=0.4)
        assert [len(rs) for rs in out] == [len(rs) for rs in route_sets]

    def test_originals_untouched(self, net):
        planner = RoutePlanner(net)
        route_sets = [planner.recommend(0, 35, 2)]
        tasks = TaskSet([Task(0, 0.0, 0.0, 10.0, 0.0)])
        assign_tasks_to_routes(net, route_sets, tasks, coverage_radius_km=5.0)
        assert route_sets[0][0].task_ids == ()

    def test_coverage_matrix_shape(self, net):
        planner = RoutePlanner(net)
        route_sets = [planner.recommend(0, 35, 2), planner.recommend(5, 30, 2)]
        tasks = TaskSet([Task(k, 1.0 + k, 1.0, 10.0, 0.0) for k in range(3)])
        assigned = assign_tasks_to_routes(net, route_sets, tasks, coverage_radius_km=0.5)
        mat = coverage_matrix(assigned, 3)
        n_routes = sum(len(rs) for rs in assigned)
        assert mat.shape == (n_routes, 3)
        # Matrix agrees with the attached task ids.
        flat = [r for rs in assigned for r in rs]
        for row, r in zip(mat, flat):
            assert set(np.flatnonzero(row)) == set(r.task_ids)

    def test_coverage_matrix_empty(self):
        assert coverage_matrix([], 4).shape == (0, 4)
