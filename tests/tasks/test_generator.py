"""Tests for repro.tasks.generator."""

import numpy as np
import pytest

from repro.network.builders import grid_city
from repro.tasks.generator import generate_tasks


@pytest.fixture(scope="module")
def net():
    return grid_city(6, 6, seed=0)


class TestGenerateTasks:
    def test_count_and_ids(self, net):
        ts = generate_tasks(net, 25, seed=1)
        assert len(ts) == 25
        assert [t.task_id for t in ts] == list(range(25))

    def test_reward_ranges_respected(self, net):
        ts = generate_tasks(
            net, 100, base_reward_range=(10, 20), reward_increment_range=(0, 1), seed=2
        )
        assert np.all(ts.base_rewards >= 10) and np.all(ts.base_rewards <= 20)
        assert np.all(ts.reward_increments >= 0) and np.all(ts.reward_increments <= 1)

    def test_reproducible(self, net):
        a = generate_tasks(net, 10, seed=5)
        b = generate_tasks(net, 10, seed=5)
        assert np.allclose(a.xy, b.xy)
        assert np.allclose(a.base_rewards, b.base_rewards)

    def test_zero_tasks(self, net):
        assert len(generate_tasks(net, 0, seed=0)) == 0

    def test_on_road_tasks_near_network(self, net):
        ts = generate_tasks(net, 60, on_road_fraction=1.0, road_jitter_km=0.05, seed=3)
        # Every task should be within a couple of jitter sigmas of some node.
        d2 = (
            (ts.xy[:, None, 0] - net.coords[None, :, 0]) ** 2
            + (ts.xy[:, None, 1] - net.coords[None, :, 1]) ** 2
        )
        nearest = np.sqrt(d2.min(axis=1))
        assert np.median(nearest) < 0.5

    def test_uniform_fraction(self, net):
        ts = generate_tasks(net, 40, on_road_fraction=0.0, seed=4)
        box = net.bounding_box()
        assert np.all(ts.xy[:, 0] >= box.min_x - 1e-9)
        assert np.all(ts.xy[:, 0] <= box.max_x + 1e-9)

    def test_validation(self, net):
        with pytest.raises(ValueError):
            generate_tasks(net, -1)
        with pytest.raises(ValueError):
            generate_tasks(net, 5, base_reward_range=(0.0, 10.0))
        with pytest.raises(ValueError):
            generate_tasks(net, 5, reward_increment_range=(0.5, 1.5))
