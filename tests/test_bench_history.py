"""Tests for the perf-regression ledger (benchmarks/bench_history.py)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_history",
    Path(__file__).parent.parent / "benchmarks" / "bench_history.py",
)
bench_history = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_history)


def _bench_doc(scale: float = 1.0, node: str = "ci-1") -> dict:
    """Synthetic pytest-benchmark document: batched 10x faster than scalar."""
    names = {
        "test_bench_proposals.py::TestProposalSweep::test_sweep_batched": 0.004,
        "test_bench_proposals.py::TestProposalSweep::test_sweep_scalar_loop": 0.040,
        "test_bench_serve.py::test_churn_round[1]": 0.060,
        "test_bench_serve.py::test_churn_round[4]": 0.030,
    }
    return {
        "datetime": "2026-08-09T00:00:00",
        "machine_info": {
            "node": node, "machine": "x86_64", "processor": "x86_64",
            "python_version": "3.12.0",
        },
        "commit_info": {"id": "abc123"},
        "benchmarks": [
            {"fullname": f"benchmarks/{name}", "stats": {"median": m * scale}}
            for name, m in names.items()
        ],
    }


def _write(tmp_path: Path, doc: dict, name: str = "bench.json") -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(doc), encoding="utf-8")
    return path


class TestLoadRecord:
    def test_extracts_medians_and_ratios(self, tmp_path):
        record = bench_history.load_record(_write(tmp_path, _bench_doc()))
        assert record["schema"] == bench_history.SCHEMA
        assert record["commit"] == "abc123"
        assert record["medians"][
            "proposals::TestProposalSweep::test_sweep_batched"
        ] == pytest.approx(0.004)
        assert record["ratios"]["proposals.sweep_speedup"] == pytest.approx(10.0)
        assert record["ratios"]["serve.churn_capacity_k4"] == pytest.approx(2.0)

    def test_untracked_benchmarks_ignored(self, tmp_path):
        doc = _bench_doc()
        doc["benchmarks"].append(
            {"fullname": "benchmarks/test_other.py::test_x",
             "stats": {"median": 1.0}}
        )
        record = bench_history.load_record(_write(tmp_path, doc))
        assert not any("test_x" in k for k in record["medians"])


class TestAppendAndCheck:
    def _run(self, tmp_path, argv):
        return bench_history.main(
            argv + ["--history", str(tmp_path / "hist.json")]
        )

    def test_append_creates_ledger(self, tmp_path):
        bench = _write(tmp_path, _bench_doc())
        assert self._run(tmp_path, ["append", "--bench", str(bench)]) == 0
        records = json.loads((tmp_path / "hist.json").read_text())
        assert len(records) == 1
        assert records[0]["schema"] == bench_history.SCHEMA

    def test_check_passes_within_threshold(self, tmp_path):
        self._run(tmp_path, ["append", "--bench", str(_write(tmp_path, _bench_doc()))])
        bench = _write(tmp_path, _bench_doc(scale=1.1), "b2.json")
        assert self._run(tmp_path, ["check", "--bench", str(bench)]) == 0

    def test_check_fails_on_median_regression(self, tmp_path):
        self._run(tmp_path, ["append", "--bench", str(_write(tmp_path, _bench_doc()))])
        bench = _write(tmp_path, _bench_doc(scale=1.5), "b2.json")
        assert self._run(tmp_path, ["check", "--bench", str(bench)]) == 1

    def test_other_machine_skips_absolute_gate(self, tmp_path):
        self._run(tmp_path, ["append", "--bench", str(_write(tmp_path, _bench_doc()))])
        # 2x slower wall times but same ratios, on a different machine:
        # the absolute gate must not fire.
        bench = _write(tmp_path, _bench_doc(scale=2.0, node="ci-2"), "b2.json")
        assert self._run(tmp_path, ["check", "--bench", str(bench)]) == 0

    def test_ratio_gate_is_cross_machine(self, tmp_path):
        self._run(tmp_path, ["append", "--bench", str(_write(tmp_path, _bench_doc()))])
        doc = _bench_doc(node="ci-2")
        # Batched path lost its edge: 10x -> 5x speedup.
        for bench in doc["benchmarks"]:
            if bench["fullname"].endswith("test_sweep_batched"):
                bench["stats"]["median"] = 0.008
        path = _write(tmp_path, doc, "b2.json")
        assert self._run(tmp_path, ["check", "--bench", str(path)]) == 1

    def test_check_with_empty_history_passes(self, tmp_path):
        bench = _write(tmp_path, _bench_doc())
        assert self._run(tmp_path, ["check", "--bench", str(bench)]) == 0

    def test_rolling_window_uses_recent_records(self, tmp_path):
        # Old slow records age out of the --window baseline.
        for scale in (4.0, 1.0, 1.0, 1.0):
            self._run(tmp_path, [
                "append", "--bench",
                str(_write(tmp_path, _bench_doc(scale=scale), f"b{scale}.json")),
            ])
        bench = _write(tmp_path, _bench_doc(scale=1.6), "probe.json")
        assert self._run(
            tmp_path, ["check", "--bench", str(bench), "--window", "3"]
        ) == 1

    def test_missing_bench_file_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            self._run(tmp_path, ["check", "--bench", str(tmp_path / "no.json")])

    def test_rejects_unknown_schema(self, tmp_path):
        (tmp_path / "hist.json").write_text('[{"schema": "other/v9"}]')
        bench = _write(tmp_path, _bench_doc())
        with pytest.raises(SystemExit):
            self._run(tmp_path, ["check", "--bench", str(bench)])
