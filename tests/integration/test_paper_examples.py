"""Integration tests reproducing the paper's worked examples exactly.

Fig. 1: three route-selection approaches and their profits/equilibrium
status.  Fig. 2: the influence of phi and theta on a two-user game.
"""

import numpy as np
import pytest

from repro.algorithms import BUAU, CORN, DGRN, MUUN, exhaustive_optimum
from repro.core import StrategyProfile, is_nash_equilibrium
from repro.core.profit import all_profits, total_profit
from repro.metrics import average_congestion, average_detour, coverage


class TestFig1:
    """The illustrative example of the introduction."""

    def test_maximum_reward_approach_totals_6(self, fig1_game):
        # Everyone grabs the $6 task -> each earns 2.
        p = StrategyProfile(fig1_game, [1, 0, 0])
        assert np.allclose(all_profits(p), [2.0, 2.0, 2.0])
        assert not is_nash_equilibrium(p)

    def test_distributed_equilibrium_totals_11(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 0])
        assert total_profit(p) == pytest.approx(11.0)
        assert is_nash_equilibrium(p)

    def test_centralized_optimal_totals_12_but_unstable(self, fig1_game):
        p = StrategyProfile(fig1_game, [0, 0, 1])
        assert total_profit(p) == pytest.approx(12.0)
        assert not is_nash_equilibrium(p)
        # u3 can deviate to r4 and earn 3 > 1 — exactly the paper's note.
        from repro.core.profit import candidate_profits

        cp = candidate_profits(p, 2)
        assert cp[0] == pytest.approx(3.0)
        assert cp[1] == pytest.approx(1.0)

    def test_corn_finds_the_12(self, fig1_game):
        assert CORN(seed=0).run(fig1_game).total_profit == pytest.approx(12.0)

    @pytest.mark.parametrize("algo_cls", [DGRN, MUUN, BUAU])
    @pytest.mark.parametrize("start", [[0, 0, 0], [1, 0, 0], [1, 0, 1], [0, 0, 1]])
    def test_dynamics_always_land_on_the_unique_equilibrium(
        self, algo_cls, start, fig1_game
    ):
        initial = StrategyProfile(fig1_game, start)
        result = algo_cls(seed=0).run(fig1_game, initial=initial)
        assert list(result.profile.choices) == [0, 0, 0]
        assert result.total_profit == pytest.approx(11.0)

    def test_equilibrium_unique(self, fig1_game):
        equilibria = [
            tuple(p.choices.tolist())
            for p in StrategyProfile.all_profiles(fig1_game)
            if is_nash_equilibrium(p)
        ]
        assert equilibria == [(0, 0, 0)]


class TestFig2:
    """Platform-weight steering on the two-user, two-route example."""

    def equilibrium(self, fig2_game, phi, theta):
        game = fig2_game(phi, theta)
        result = BUAU(seed=0).run(game)
        assert result.converged
        return game, result.profile

    def test_low_phi_low_theta_maximizes_tasks(self, fig2_game):
        game, profile = self.equilibrium(fig2_game, 0.1, 0.1)
        # Users split across both routes: 2 tasks covered.
        assert coverage(profile) == pytest.approx(1.0)
        assert average_detour(profile) == pytest.approx(1.0)  # (0+2)/2
        assert average_congestion(profile) == pytest.approx(2.0)  # (3+1)/2

    def test_high_phi_minimizes_detour(self, fig2_game):
        game, profile = self.equilibrium(fig2_game, 0.9, 0.1)
        # Both users pile onto r1 (no detour).
        assert [profile.route_of(0), profile.route_of(1)] == [0, 0]
        assert average_detour(profile) == pytest.approx(0.0)
        assert coverage(profile) == pytest.approx(0.5)

    def test_high_theta_minimizes_congestion(self, fig2_game):
        game, profile = self.equilibrium(fig2_game, 0.1, 0.9)
        # Both users pile onto r2 (low congestion).
        assert [profile.route_of(0), profile.route_of(1)] == [1, 1]
        assert average_congestion(profile) == pytest.approx(1.0)

    def test_all_three_regimes_are_nash(self, fig2_game):
        for phi, theta in [(0.1, 0.1), (0.9, 0.1), (0.1, 0.9)]:
            _, profile = self.equilibrium(fig2_game, phi, theta)
            assert is_nash_equilibrium(profile)


class TestOptimalityGap:
    def test_equilibrium_never_beats_optimum(self, shanghai_game):
        ne = DGRN(seed=0).run(shanghai_game)
        opt = CORN(seed=0).run(shanghai_game)
        assert ne.total_profit <= opt.total_profit + 1e-9

    def test_equilibrium_close_to_optimum(self, shanghai_game):
        # The paper's headline: DGRN's total profit is close to CORN's.
        ne = DGRN(seed=0).run(shanghai_game)
        opt = CORN(seed=0).run(shanghai_game)
        assert ne.total_profit / opt.total_profit > 0.7
