"""Smoke-run the example scripts (they are part of the public surface)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart_runs(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "Nash equilibrium reached: True" in out
        assert "Equilibrium efficiency" in out

    def test_fleet_operations_runs(self, capsys):
        load_example("fleet_operations").main()
        out = capsys.readouterr().out
        assert "Fleet totals" in out
        assert "completions" in out

    def test_distributed_protocol_runs(self, capsys):
        load_example("distributed_protocol").main()
        out = capsys.readouterr().out
        assert "SUU scheduling" in out and "PUU scheduling" in out

    def test_real_trace_pipeline_runs(self, tmp_path, capsys):
        load_example("real_trace_pipeline").main(tmp_path)
        out = capsys.readouterr().out
        assert "parsed roma" in out
        assert (tmp_path / "map_roma.svg").exists()

    @pytest.mark.slow
    def test_shanghai_campaign_runs(self, capsys):
        load_example("shanghai_campaign").main()
        out = capsys.readouterr().out
        assert "PoA check" in out
