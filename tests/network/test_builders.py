"""Tests for repro.network.builders."""

import numpy as np
import pytest

from repro.network.builders import grid_city, radial_ring_city, random_geometric_city
from repro.network.shortest_path import dijkstra


def assert_strongly_connected(net):
    res = dijkstra(net, 0)
    assert np.all(np.isfinite(res.dist)), "graph is not connected from node 0"


class TestGridCity:
    def test_node_count(self):
        net = grid_city(5, 4, seed=0)
        assert net.num_nodes == 20

    def test_connected(self):
        assert_strongly_connected(grid_city(6, 6, seed=1))

    def test_reproducible(self):
        a = grid_city(5, 5, seed=3)
        b = grid_city(5, 5, seed=3)
        assert np.allclose(a.coords, b.coords)
        assert a.num_edges == b.num_edges

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            grid_city(1, 5)

    def test_arterials_are_faster(self):
        net = grid_city(8, 8, seed=0, arterial_every=4)
        speeds = set(net.free_flow_kmh.tolist())
        assert 70.0 in speeds and 45.0 in speeds

    def test_diagonals_probabilistic(self):
        none = grid_city(6, 6, seed=0, diagonal_prob=0.0)
        many = grid_city(6, 6, seed=0, diagonal_prob=1.0)
        assert many.num_edges > none.num_edges


class TestRadialRingCity:
    def test_node_count(self):
        net = radial_ring_city(rings=3, spokes=8, seed=0)
        assert net.num_nodes == 1 + 3 * 8

    def test_connected(self):
        assert_strongly_connected(radial_ring_city(rings=4, spokes=10, seed=0))

    def test_outer_rings_faster(self):
        net = radial_ring_city(rings=3, spokes=6, seed=0)
        speeds = net.free_flow_kmh
        assert speeds.max() > speeds.min()

    def test_validation(self):
        with pytest.raises(ValueError):
            radial_ring_city(rings=0)
        with pytest.raises(ValueError):
            radial_ring_city(spokes=2)


class TestRandomGeometricCity:
    def test_node_count(self):
        net = random_geometric_city(40, seed=0)
        assert net.num_nodes == 40

    def test_connected_even_when_sparse(self):
        # Low k tends to fragment; bridging must reconnect.
        net = random_geometric_city(60, k_neighbors=1, seed=5)
        assert_strongly_connected(net)

    @pytest.mark.parametrize("seed", range(5))
    def test_connected_across_seeds(self, seed):
        assert_strongly_connected(random_geometric_city(50, seed=seed))

    def test_reproducible(self):
        a = random_geometric_city(30, seed=9)
        b = random_geometric_city(30, seed=9)
        assert np.allclose(a.coords, b.coords)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_geometric_city(1)
        with pytest.raises(ValueError):
            random_geometric_city(10, k_neighbors=0)
