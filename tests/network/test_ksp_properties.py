"""Property tests certifying Yen's algorithm against brute-force path
enumeration on small random graphs."""

import itertools

import numpy as np
import pytest

from repro.network.graph import RoadNetwork
from repro.network.ksp import k_shortest_paths
from repro.network.routing import RoutePlanner


def random_network(rng, n_nodes=7, p_edge=0.45) -> RoadNetwork:
    net = RoadNetwork()
    xy = rng.uniform(0, 5, size=(n_nodes, 2))
    for x, y in xy:
        net.add_node(float(x), float(y))
    for u in range(n_nodes):
        for v in range(u + 1, n_nodes):
            if rng.random() < p_edge:
                net.add_edge(u, v)
    return net.freeze()


def all_simple_paths(net: RoadNetwork, source: int, target: int):
    """Brute-force loopless path enumeration (tiny graphs only)."""
    out = []

    def dfs(node, path, visited):
        if node == target:
            out.append((list(path), net.path_length_km(path)))
            return
        for nbr, _ in net.neighbors(node):
            if nbr not in visited:
                visited.add(nbr)
                path.append(nbr)
                dfs(nbr, path, visited)
                path.pop()
                visited.remove(nbr)

    dfs(source, [source], {source})
    return out


class TestYenAgainstBruteForce:
    @pytest.mark.parametrize("trial", range(12))
    def test_top_k_matches_enumeration(self, trial):
        rng = np.random.default_rng(trial)
        net = random_network(rng)
        source, target = 0, net.num_nodes - 1
        truth = sorted(all_simple_paths(net, source, target), key=lambda pc: pc[1])
        k = 4
        yen = k_shortest_paths(net, source, target, k)
        assert len(yen) == min(k, len(truth))
        for (got_path, got_cost), (_, want_cost) in zip(yen, truth):
            # Cost sequence must match exactly (paths may tie).
            assert got_cost == pytest.approx(want_cost, abs=1e-9)
            assert len(got_path) == len(set(got_path))  # loopless

    @pytest.mark.parametrize("trial", range(6))
    def test_penalty_routes_are_valid_paths(self, trial):
        rng = np.random.default_rng(100 + trial)
        net = random_network(rng)
        planner = RoutePlanner(net, method="penalty")
        routes = planner.recommend(0, net.num_nodes - 1, 4)
        for r in routes:
            # Connected node path with matching length.
            assert net.path_length_km(list(r.nodes)) == pytest.approx(
                r.length_km, abs=1e-9
            )
            assert len(r.nodes) == len(set(r.nodes))

    @pytest.mark.parametrize("trial", range(6))
    def test_penalty_first_route_is_optimal(self, trial):
        rng = np.random.default_rng(200 + trial)
        net = random_network(rng)
        truth = all_simple_paths(net, 0, net.num_nodes - 1)
        if not truth:
            pytest.skip("disconnected sample")
        best = min(c for _, c in truth)
        planner = RoutePlanner(net, method="penalty")
        routes = planner.recommend(0, net.num_nodes - 1, 3)
        assert routes[0].length_km == pytest.approx(best, abs=1e-9)
