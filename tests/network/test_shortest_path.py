"""Tests for repro.network.shortest_path."""

import numpy as np
import pytest

from repro.network.builders import grid_city
from repro.network.graph import RoadNetwork
from repro.network.shortest_path import (
    dijkstra,
    length_weight,
    path_cost,
    shortest_path,
    travel_time_weight,
)


def line_net(n=5) -> RoadNetwork:
    net = RoadNetwork()
    for i in range(n):
        net.add_node(float(i), 0.0)
    for i in range(n - 1):
        net.add_edge(i, i + 1)
    return net.freeze()


def square_with_shortcut() -> RoadNetwork:
    # 0 -(1)- 1 -(1)- 2 and direct 0 -(1.5)- 2
    net = RoadNetwork()
    net.add_node(0, 0)
    net.add_node(1, 0)
    net.add_node(2, 0)
    net.add_edge(0, 1, length_km=1.0)
    net.add_edge(1, 2, length_km=1.0)
    net.add_edge(0, 2, length_km=1.5)
    return net.freeze()


class TestDijkstra:
    def test_line_distances(self):
        net = line_net()
        res = dijkstra(net, 0)
        assert np.allclose(res.dist, [0, 1, 2, 3, 4])

    def test_path_reconstruction(self):
        net = line_net()
        res = dijkstra(net, 0)
        assert res.path_to(4) == [0, 1, 2, 3, 4]

    def test_prefers_shortcut(self):
        net = square_with_shortcut()
        path, cost = shortest_path(net, 0, 2)
        assert path == [0, 2]
        assert cost == pytest.approx(1.5)

    def test_banned_edge_forces_detour(self):
        net = square_with_shortcut()
        eid = net.path_edge_ids([0, 2])[0]
        res = dijkstra(net, 0, banned_edges={eid})
        assert res.path_to(2) == [0, 1, 2]

    def test_banned_node_unreachable(self):
        net = line_net()
        res = dijkstra(net, 0, banned_nodes={2})
        assert not res.reachable(4)
        with pytest.raises(ValueError):
            res.path_to(4)

    def test_banned_source(self):
        net = line_net()
        res = dijkstra(net, 0, banned_nodes={0})
        assert not res.reachable(1)

    def test_early_exit_target(self):
        net = line_net(10)
        res = dijkstra(net, 0, target=3)
        assert res.distance_to(3) == pytest.approx(3.0)

    def test_source_distance_zero(self):
        res = dijkstra(line_net(), 2)
        assert res.distance_to(2) == 0.0

    def test_grid_symmetry(self):
        net = grid_city(5, 5, jitter=0.0, diagonal_prob=0.0, seed=0)
        a = dijkstra(net, 0).distance_to(24)
        b = dijkstra(net, 24).distance_to(0)
        assert a == pytest.approx(b)


class TestWeights:
    def test_travel_time_uses_observed_speed(self):
        net = square_with_shortcut()
        # Slow down the direct edge: the two-hop path wins on time.
        net.observed_kmh = net.free_flow_kmh.copy()
        direct = net.path_edge_ids([0, 2])[0]
        net.observed_kmh[direct] = 1.0
        path, _ = shortest_path(net, 0, 2, weight=travel_time_weight(net))
        assert path == [0, 1, 2]

    def test_path_cost_matches_dijkstra(self):
        net = square_with_shortcut()
        w = length_weight(net)
        path, cost = shortest_path(net, 0, 2)
        assert path_cost(net, path, w) == pytest.approx(cost)
