"""Tests for repro.network.ksp (Yen's algorithm)."""

import numpy as np
import pytest

from repro.network.builders import grid_city
from repro.network.graph import RoadNetwork
from repro.network.ksp import k_shortest_paths
from repro.network.shortest_path import dijkstra


def diamond() -> RoadNetwork:
    """Two disjoint 0->3 paths plus a longer third one."""
    net = RoadNetwork()
    for xy in [(0, 0), (1, 1), (1, -1), (2, 0), (1, 3)]:
        net.add_node(*xy)
    net.add_edge(0, 1, length_km=1.0)
    net.add_edge(1, 3, length_km=1.0)
    net.add_edge(0, 2, length_km=1.2)
    net.add_edge(2, 3, length_km=1.2)
    net.add_edge(0, 4, length_km=3.0)
    net.add_edge(4, 3, length_km=3.0)
    return net.freeze()


class TestYen:
    def test_first_path_is_shortest(self):
        net = diamond()
        paths = k_shortest_paths(net, 0, 3, 3)
        best = dijkstra(net, 0, target=3)
        assert paths[0][0] == best.path_to(3)
        assert paths[0][1] == pytest.approx(best.distance_to(3))

    def test_costs_nondecreasing(self):
        net = diamond()
        paths = k_shortest_paths(net, 0, 3, 3)
        costs = [c for _, c in paths]
        assert costs == sorted(costs)

    def test_expected_costs(self):
        paths = k_shortest_paths(diamond(), 0, 3, 3)
        assert [round(c, 3) for _, c in paths] == [2.0, 2.4, 6.0]

    def test_paths_distinct(self):
        paths = k_shortest_paths(diamond(), 0, 3, 3)
        assert len({tuple(p) for p, _ in paths}) == 3

    def test_paths_loopless(self):
        net = grid_city(5, 5, seed=0)
        for path, _ in k_shortest_paths(net, 0, 24, 5):
            assert len(path) == len(set(path))

    def test_fewer_paths_than_k(self):
        net = RoadNetwork()
        net.add_node(0, 0)
        net.add_node(1, 0)
        net.add_edge(0, 1)
        net.freeze()
        paths = k_shortest_paths(net, 0, 1, 5)
        assert len(paths) == 1

    def test_unreachable_gives_empty(self):
        net = RoadNetwork()
        net.add_node(0, 0)
        net.add_node(5, 5)
        net.freeze()
        assert k_shortest_paths(net, 0, 1, 3) == []

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            k_shortest_paths(diamond(), 0, 3, 0)

    def test_grid_many_alternatives(self):
        net = grid_city(6, 6, seed=1)
        paths = k_shortest_paths(net, 0, 35, 5)
        assert len(paths) == 5
        # All connect the same endpoints.
        for p, _ in paths:
            assert p[0] == 0 and p[-1] == 35

    def test_costs_match_path_lengths(self):
        net = grid_city(5, 5, seed=2)
        for path, cost in k_shortest_paths(net, 0, 24, 4):
            assert cost == pytest.approx(net.path_length_km(path))
