"""Tests for repro.network.routing."""

import numpy as np
import pytest

from repro.network.builders import grid_city
from repro.network.congestion import BackgroundTraffic
from repro.network.routing import Route, RoutePlanner


@pytest.fixture(scope="module")
def net():
    return grid_city(7, 7, seed=0)


class TestRoute:
    def test_validation(self):
        with pytest.raises(ValueError):
            Route(nodes=(), length_km=1.0, detour_km=0.0, congestion=0.0)
        with pytest.raises(ValueError):
            Route(nodes=(0,), length_km=-1.0, detour_km=0.0, congestion=0.0)

    def test_with_tasks(self):
        r = Route(nodes=(0, 1), length_km=1.0, detour_km=0.0, congestion=0.0)
        r2 = r.with_tasks((3, 4))
        assert r2.task_ids == (3, 4)
        assert r.task_ids == ()  # original unchanged

    def test_endpoints(self):
        r = Route(nodes=(5, 6, 7), length_km=2.0, detour_km=0.0, congestion=0.0)
        assert r.origin == 5 and r.destination == 7


class TestRoutePlanner:
    @pytest.mark.parametrize("method", ["penalty", "ksp"])
    def test_first_route_has_zero_detour(self, net, method):
        planner = RoutePlanner(net, method=method)
        routes = planner.recommend(0, 48, 4)
        assert routes[0].detour_km == pytest.approx(0.0)

    @pytest.mark.parametrize("method", ["penalty", "ksp"])
    def test_routes_sorted_by_length(self, net, method):
        planner = RoutePlanner(net, method=method)
        routes = planner.recommend(0, 48, 5)
        lengths = [r.length_km for r in routes]
        assert lengths == sorted(lengths)

    def test_detours_consistent_with_lengths(self, net):
        planner = RoutePlanner(net)
        routes = planner.recommend(0, 48, 5)
        for r in routes:
            assert r.detour_km == pytest.approx(r.length_km - routes[0].length_km)

    def test_same_endpoints(self, net):
        planner = RoutePlanner(net)
        for r in planner.recommend(3, 45, 4):
            assert r.origin == 3 and r.destination == 45

    def test_penalty_routes_distinct(self, net):
        planner = RoutePlanner(net, method="penalty")
        routes = planner.recommend(0, 48, 5)
        assert len({r.nodes for r in routes}) == len(routes)

    def test_penalty_gives_diverse_detours(self, net):
        planner = RoutePlanner(net, method="penalty", penalty_factor=2.2)
        routes = planner.recommend(0, 48, 5)
        assert len(routes) >= 3
        assert max(r.detour_km for r in routes) > 0.0

    def test_same_origin_destination_empty(self, net):
        planner = RoutePlanner(net)
        assert planner.recommend(5, 5, 3) == []

    def test_k_validation(self, net):
        planner = RoutePlanner(net)
        with pytest.raises(ValueError):
            planner.recommend(0, 1, 0)

    def test_bad_method(self, net):
        with pytest.raises(ValueError):
            RoutePlanner(net, method="teleport")

    def test_congestion_attached(self, net):
        traffic = BackgroundTraffic.uniform(0.3, scale=10.0)
        planner = RoutePlanner(net, traffic)
        routes = planner.recommend(0, 48, 2)
        for r in routes:
            assert r.congestion == pytest.approx(3.0, rel=1e-3)

    def test_recommend_many(self, net):
        planner = RoutePlanner(net)
        out = planner.recommend_many([(0, 48), (6, 42)], 2)
        assert len(out) == 2 and all(len(rs) >= 1 for rs in out)

    def test_deterministic(self, net):
        a = RoutePlanner(net).recommend(0, 48, 4)
        b = RoutePlanner(net).recommend(0, 48, 4)
        assert [r.nodes for r in a] == [r.nodes for r in b]
