"""Tests for repro.network.graph."""

import numpy as np
import pytest

from repro.network.graph import RoadNetwork


def square_net() -> RoadNetwork:
    """Unit square with one diagonal, bidirectional."""
    net = RoadNetwork()
    for x, y in [(0, 0), (1, 0), (1, 1), (0, 1)]:
        net.add_node(x, y)
    net.add_edge(0, 1)
    net.add_edge(1, 2)
    net.add_edge(2, 3)
    net.add_edge(3, 0)
    net.add_edge(0, 2)  # diagonal
    return net


class TestBuild:
    def test_node_ids_sequential(self):
        net = RoadNetwork()
        assert net.add_node(0, 0) == 0
        assert net.add_node(1, 1) == 1

    def test_bidirectional_adds_two_arcs(self):
        net = square_net()
        assert net.num_edges == 10  # 5 undirected edges

    def test_unidirectional(self):
        net = RoadNetwork()
        net.add_node(0, 0)
        net.add_node(1, 0)
        net.add_edge(0, 1, bidirectional=False)
        assert net.num_edges == 1
        assert net.neighbors(1) == []

    def test_default_length_euclidean(self):
        net = square_net().freeze()
        e = net.edge(net.path_edge_ids([0, 2])[0])
        assert e.length_km == pytest.approx(np.sqrt(2))

    def test_self_loop_rejected(self):
        net = RoadNetwork()
        net.add_node(0, 0)
        with pytest.raises(ValueError):
            net.add_edge(0, 0)

    def test_unknown_node_rejected(self):
        net = RoadNetwork()
        net.add_node(0, 0)
        with pytest.raises(IndexError):
            net.add_edge(0, 3)

    def test_bad_speed_rejected(self):
        net = RoadNetwork()
        net.add_node(0, 0)
        net.add_node(1, 1)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, free_flow_kmh=0.0)

    def test_frozen_rejects_mutation(self):
        net = square_net().freeze()
        with pytest.raises(RuntimeError):
            net.add_node(2, 2)

    def test_attribute_arrays_require_freeze(self):
        net = square_net()
        with pytest.raises(RuntimeError):
            _ = net.coords


class TestQuery:
    def test_neighbors(self):
        net = square_net()
        nbrs = [v for v, _ in net.neighbors(0)]
        assert set(nbrs) == {1, 3, 2}

    def test_path_edge_ids_and_length(self):
        net = square_net().freeze()
        assert net.path_length_km([0, 1, 2]) == pytest.approx(2.0)

    def test_path_length_trivial(self):
        net = square_net().freeze()
        assert net.path_length_km([0]) == 0.0

    def test_non_adjacent_raises(self):
        net = square_net()
        with pytest.raises(ValueError, match="not adjacent"):
            net.path_edge_ids([1, 3])

    def test_polyline(self):
        net = square_net()
        poly = net.path_polyline([0, 1, 2])
        assert poly.shape == (3, 2)
        assert np.allclose(poly[-1], [1, 1])

    def test_nearest_node(self):
        net = square_net().freeze()
        assert net.nearest_node(0.1, -0.1) == 0
        assert net.nearest_node(0.9, 1.2) == 2

    def test_nearest_nodes_vectorized(self):
        net = square_net().freeze()
        out = net.nearest_nodes(np.array([[0.1, 0.0], [0.0, 0.9]]))
        assert list(out) == [0, 3]

    def test_bounding_box(self):
        net = square_net().freeze()
        b = net.bounding_box()
        assert (b.min_x, b.min_y, b.max_x, b.max_y) == (0, 0, 1, 1)

    def test_observed_defaults_to_free_flow(self):
        net = square_net().freeze()
        assert np.array_equal(net.observed_kmh, net.free_flow_kmh)

    def test_edges_iterator(self):
        net = square_net()
        assert len(list(net.edges())) == net.num_edges

    def test_repr(self):
        assert "nodes=4" in repr(square_net())
