"""Round-trip tests for road-network serialization."""

import json

import numpy as np
import pytest

from repro.network.builders import grid_city, radial_ring_city
from repro.network.graph import RoadNetwork
from repro.network.io import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from repro.network.shortest_path import dijkstra


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [
        lambda: grid_city(5, 5, seed=1),
        lambda: radial_ring_city(rings=3, spokes=8, seed=1),
    ])
    def test_topology_preserved(self, factory, tmp_path):
        net = factory()
        path = tmp_path / "net.json"
        save_network(net, path)
        loaded = load_network(path)
        assert loaded.num_nodes == net.num_nodes
        assert loaded.num_edges == net.num_edges
        assert np.allclose(loaded.coords, net.coords)

    def test_shortest_paths_identical(self, tmp_path):
        net = grid_city(6, 6, seed=2)
        loaded = network_from_dict(network_to_dict(net))
        a = dijkstra(net, 0).dist
        b = dijkstra(loaded, 0).dist
        assert np.allclose(a, b)

    def test_one_way_edges_preserved(self):
        net = RoadNetwork()
        net.add_node(0, 0)
        net.add_node(1, 0)
        net.add_node(1, 1)
        net.add_edge(0, 1, bidirectional=False, free_flow_kmh=30.0)
        net.add_edge(1, 2, bidirectional=True)
        net.freeze()
        loaded = network_from_dict(network_to_dict(net))
        assert loaded.num_edges == 3
        assert loaded.neighbors(1) != []
        # The one-way arc has no reverse.
        assert all(v != 0 for v, _ in loaded.neighbors(1))

    def test_speeds_preserved(self):
        net = grid_city(4, 4, seed=3)
        loaded = network_from_dict(network_to_dict(net))
        assert sorted(loaded.free_flow_kmh.tolist()) == sorted(
            net.free_flow_kmh.tolist()
        )

    def test_hand_authored_document(self, tmp_path):
        doc = {
            "format_version": 1,
            "nodes": [[0.0, 0.0], [1.0, 0.0]],
            "edges": [{"u": 0, "v": 1, "length_km": 1.0}],
        }
        path = tmp_path / "net.json"
        path.write_text(json.dumps(doc))
        net = load_network(path)
        assert net.num_nodes == 2
        assert net.num_edges == 2  # default bidirectional

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError, match="format_version"):
            network_from_dict({"format_version": 9, "nodes": [], "edges": []})

    def test_full_pipeline_on_loaded_network(self, tmp_path):
        from repro.network.routing import RoutePlanner
        from repro.tasks.generator import generate_tasks

        net = grid_city(6, 6, seed=4)
        path = tmp_path / "net.json"
        save_network(net, path)
        loaded = load_network(path)
        planner = RoutePlanner(loaded)
        routes = planner.recommend(0, loaded.num_nodes - 1, 3)
        assert len(routes) >= 1
        tasks = generate_tasks(loaded, 10, seed=5)
        assert len(tasks) == 10
