"""Tests for repro.network.congestion."""

import numpy as np
import pytest

from repro.network.builders import grid_city
from repro.network.congestion import BackgroundTraffic, CongestionField


class TestCongestionField:
    def test_zero_field(self):
        fld = CongestionField(np.zeros((0, 2)), np.zeros(0), np.ones(0))
        assert np.allclose(fld.slowdown(np.array([[0.0, 0.0]])), 0.0)

    def test_peak_at_center(self):
        fld = CongestionField(
            np.array([[0.0, 0.0]]), np.array([0.5]), np.array([1.0])
        )
        at_center = float(fld.slowdown(np.array([[0.0, 0.0]]))[0])
        far = float(fld.slowdown(np.array([[10.0, 10.0]]))[0])
        assert at_center == pytest.approx(0.5)
        assert far < 0.01

    def test_slowdown_bounded(self):
        fld = CongestionField.random((0, 0), (5, 5), n_hotspots=6, seed=0)
        pts = np.random.default_rng(0).uniform(0, 5, size=(100, 2))
        s = fld.slowdown(pts)
        assert np.all((s >= 0) & (s < 1))

    def test_multiple_hotspots_compose(self):
        one = CongestionField(np.array([[0.0, 0.0]]), np.array([0.5]), np.array([1.0]))
        two = CongestionField(
            np.array([[0.0, 0.0], [0.0, 0.0]]),
            np.array([0.5, 0.5]),
            np.array([1.0, 1.0]),
        )
        s1 = float(one.slowdown(np.array([[0.0, 0.0]]))[0])
        s2 = float(two.slowdown(np.array([[0.0, 0.0]]))[0])
        assert s2 == pytest.approx(0.75)  # 1 - 0.5^2
        assert s2 > s1

    def test_validation(self):
        with pytest.raises(ValueError):
            CongestionField(np.array([[0.0, 0.0]]), np.array([1.5]), np.array([1.0]))
        with pytest.raises(ValueError):
            CongestionField(np.array([[0.0, 0.0]]), np.array([0.5]), np.array([0.0]))

    def test_random_reproducible(self):
        a = CongestionField.random((0, 0), (1, 1), seed=4)
        b = CongestionField.random((0, 0), (1, 1), seed=4)
        assert np.allclose(a.centers, b.centers)


class TestBackgroundTraffic:
    def test_apply_reduces_observed_speed(self):
        net = grid_city(5, 5, seed=0)
        traffic = BackgroundTraffic(
            CongestionField.random((0, 0), (2.5, 2.5), n_hotspots=3, seed=1)
        )
        traffic.apply(net)
        assert np.all(net.observed_kmh <= net.free_flow_kmh + 1e-12)
        assert np.any(net.observed_kmh < net.free_flow_kmh)

    def test_uniform_zero(self):
        net = grid_city(4, 4, seed=0)
        traffic = BackgroundTraffic.uniform()
        traffic.apply(net)
        assert np.allclose(net.observed_kmh, net.free_flow_kmh)
        assert traffic.route_congestion(net, [0, 1]) == pytest.approx(0.0)

    def test_uniform_level(self):
        net = grid_city(4, 4, seed=0)
        traffic = BackgroundTraffic.uniform(0.25, scale=20.0)
        traffic.apply(net)
        c = traffic.route_congestion(net, [0, 1])
        assert c == pytest.approx(5.0, rel=1e-3)  # 20 * 0.25

    def test_route_congestion_trivial_route(self):
        net = grid_city(4, 4, seed=0)
        traffic = BackgroundTraffic.uniform(0.5)
        assert traffic.route_congestion(net, [0]) == 0.0

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            BackgroundTraffic(
                CongestionField(np.zeros((0, 2)), np.zeros(0), np.ones(0)),
                scale=0.0,
            )

    def test_uniform_level_validation(self):
        with pytest.raises(ValueError):
            BackgroundTraffic.uniform(1.0)
