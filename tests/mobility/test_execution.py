"""Tests for the route-execution simulator."""

import numpy as np
import pytest

from repro.algorithms import DGRN
from repro.core import StrategyProfile
from repro.mobility import execute_profile
from repro.mobility.execution import _route_timeline, _task_passing_point


@pytest.fixture(scope="module")
def executed(shanghai_scenario):
    profile = DGRN(seed=0).run(shanghai_scenario.game).profile
    report = execute_profile(shanghai_scenario.network, profile)
    return shanghai_scenario, profile, report


class TestRouteTimeline:
    def test_monotone(self, shanghai_scenario):
        net = shanghai_scenario.network
        game = shanghai_scenario.game
        nodes = game.route_sets[0][0].nodes
        dist, time = _route_timeline(net, nodes)
        assert np.all(np.diff(dist) > 0)
        assert np.all(np.diff(time) > 0)

    def test_distance_matches_route_length(self, shanghai_scenario):
        net = shanghai_scenario.network
        route = shanghai_scenario.game.route_sets[0][0]
        dist, _ = _route_timeline(net, route.nodes)
        assert dist[-1] == pytest.approx(route.length_km)

    def test_time_consistent_with_speeds(self, shanghai_scenario):
        net = shanghai_scenario.network
        nodes = shanghai_scenario.game.route_sets[0][0].nodes
        _, time = _route_timeline(net, nodes)
        # Travel time must be at least length / max-speed.
        length = net.path_length_km(list(nodes))
        v_max = float(net.observed_kmh.max())
        assert time[-1] >= length / v_max * 3600.0 - 1e-6

    def test_single_node(self, shanghai_scenario):
        dist, time = _route_timeline(shanghai_scenario.network, (0,))
        assert dist[-1] == 0.0 and time[-1] == 0.0


class TestTaskPassingPoint:
    def test_midpoint_of_straight_line(self):
        poly = np.array([[0.0, 0.0], [2.0, 0.0]])
        cum = np.array([0.0, 2.0])
        along = _task_passing_point(poly, cum, 1.0, 0.5)
        assert along == pytest.approx(1.0)

    def test_before_start_clamps(self):
        poly = np.array([[0.0, 0.0], [2.0, 0.0]])
        cum = np.array([0.0, 2.0])
        assert _task_passing_point(poly, cum, -5.0, 0.0) == pytest.approx(0.0)


class TestExecuteProfile:
    def test_one_trip_per_user(self, executed):
        scenario, profile, report = executed
        assert len(report.trips) == scenario.game.num_users
        for trip in report.trips:
            assert trip.route == profile.route_of(trip.user)

    def test_events_cover_selected_routes_tasks(self, executed):
        scenario, profile, report = executed
        game = scenario.game
        expected = {
            (i, int(k))
            for i in game.users
            for k in game.covered_tasks(i, profile.route_of(i))
        }
        assert {(e.user, e.task) for e in report.events} == expected

    def test_events_sorted_and_within_trip(self, executed):
        _, _, report = executed
        times = [e.time_s for e in report.events]
        assert times == sorted(times)
        by_user = {t.user: t for t in report.trips}
        for e in report.events:
            assert 0.0 <= e.time_s <= by_user[e.user].travel_time_s + 1e-6
            assert 0.0 <= e.along_km <= by_user[e.user].distance_km + 1e-9

    def test_first_completion_is_minimum(self, executed):
        _, _, report = executed
        for task, t_first in report.first_completion_s.items():
            candidates = [e.time_s for e in report.events if e.task == task]
            assert t_first == pytest.approx(min(candidates))

    def test_aggregates_positive(self, executed):
        _, _, report = executed
        assert report.total_distance_km > 0
        assert report.mean_travel_time_s > 0
        assert report.completions_per_km > 0

    def test_empty_profile_tasks(self, shanghai_scenario):
        # Users forced onto their first (possibly taskless) routes still run.
        game = shanghai_scenario.game
        profile = StrategyProfile(game, [0] * game.num_users)
        report = execute_profile(shanghai_scenario.network, profile)
        assert len(report.trips) == game.num_users

    def test_dgrn_more_efficient_than_forced_shortest(self, shanghai_scenario):
        game = shanghai_scenario.game
        dgrn = DGRN(seed=0).run(game).profile
        shortest = StrategyProfile(game, [0] * game.num_users)
        r1 = execute_profile(shanghai_scenario.network, dgrn)
        r2 = execute_profile(shanghai_scenario.network, shortest)
        # Equilibrium play completes at least as many tasks.
        assert len(r1.events) >= len(r2.events)
