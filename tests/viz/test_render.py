"""Tests for the ASCII and SVG renderers."""

import pytest

from repro.algorithms import DGRN
from repro.viz import render_ascii, render_svg


@pytest.fixture(scope="module")
def scene():
    from repro.scenario import ScenarioConfig, build_scenario

    sc = build_scenario(ScenarioConfig(city="roma", n_users=6, n_tasks=15, seed=8))
    profile = DGRN(seed=0).run(sc.game).profile
    return sc, profile


class TestAscii:
    def test_renders_grid_with_layers(self, scene):
        sc, profile = scene
        out = render_ascii(sc.network, sc.tasks, profile, width=60, height=20)
        assert "*" in out  # tasks
        assert "O" in out and "D" in out  # route endpoints
        assert "legend" not in out  # legend text is plain

    def test_dimensions(self, scene):
        sc, _ = scene
        out = render_ascii(sc.network, width=40, height=12)
        lines = out.splitlines()
        # border + 12 rows + border + legend
        assert len(lines) == 15
        assert all(len(l) == 42 for l in lines[:14])

    def test_network_only(self, scene):
        sc, _ = scene
        out = render_ascii(sc.network)
        assert "." in out

    def test_too_small_canvas(self, scene):
        sc, _ = scene
        with pytest.raises(ValueError):
            render_ascii(sc.network, width=5, height=2)

    def test_user_selection(self, scene):
        sc, profile = scene
        out = render_ascii(sc.network, sc.tasks, profile, users=[3])
        assert "3" in out


class TestSvg:
    def test_valid_document(self, scene):
        sc, profile = scene
        doc = render_svg(sc.network, sc.tasks, profile)
        assert doc.startswith("<svg")
        assert doc.endswith("</svg>")
        assert "<polyline" in doc  # routes
        assert "<circle" in doc  # tasks / origins

    def test_selected_route_bold(self, scene):
        sc, profile = scene
        doc = render_svg(sc.network, sc.tasks, profile)
        assert 'stroke-width="3.5"' in doc  # selected
        assert "stroke-dasharray" in doc  # alternatives

    def test_file_written(self, scene, tmp_path):
        sc, profile = scene
        path = tmp_path / "scene.svg"
        doc = render_svg(sc.network, sc.tasks, profile, path=path)
        assert path.read_text() == doc

    def test_network_only(self, scene):
        sc, _ = scene
        doc = render_svg(sc.network)
        assert "<line" in doc

    def test_size_validation(self, scene):
        sc, _ = scene
        with pytest.raises(ValueError):
            render_svg(sc.network, size_px=10)
