"""Tests for the SVG line-chart renderer."""

import pytest

from repro.experiments.results import ResultTable
from repro.viz.charts import _nice_ticks, chart_from_table, line_chart


class TestNiceTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0.3, 9.7)
        assert ticks[0] <= 0.3 and ticks[-1] >= 9.7 - 1e-9

    def test_monotone(self):
        ticks = _nice_ticks(-5.0, 5.0)
        assert ticks == sorted(ticks)

    def test_degenerate_range(self):
        ticks = _nice_ticks(2.0, 2.0)
        assert len(ticks) >= 2

    def test_round_steps(self):
        ticks = _nice_ticks(0, 100)
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1


class TestLineChart:
    SERIES = {
        "DGRN": [(20, 13.0), (40, 27.0), (60, 38.0)],
        "MUUN": [(20, 4.5), (40, 8.1), (60, 10.6)],
    }

    def test_valid_svg(self):
        doc = line_chart(self.SERIES, title="Fig 4")
        assert doc.startswith("<svg") and doc.endswith("</svg>")
        assert doc.count("<polyline") == 2
        assert "Fig 4" in doc

    def test_legend_entries(self):
        doc = line_chart(self.SERIES)
        assert ">DGRN</text>" in doc and ">MUUN</text>" in doc

    def test_markers_per_point(self):
        doc = line_chart({"a": [(0, 0), (1, 1)]})
        assert doc.count("<circle") == 2

    def test_points_sorted_by_x(self):
        doc = line_chart({"a": [(2, 5.0), (0, 1.0), (1, 3.0)]})
        poly = doc.split('points="')[1].split('"')[0]
        xs = [float(p.split(",")[0]) for p in poly.split()]
        assert xs == sorted(xs)

    def test_file_written(self, tmp_path):
        path = tmp_path / "chart.svg"
        doc = line_chart(self.SERIES, path=path)
        assert path.read_text() == doc

    def test_axis_labels(self):
        doc = line_chart(self.SERIES, x_label="users", y_label="slots")
        assert ">users</text>" in doc and "slots</text>" in doc

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_canvas_validation(self):
        with pytest.raises(ValueError):
            line_chart(self.SERIES, width=50)


class TestChartFromTable:
    def make_table(self):
        t = ResultTable()
        for algo in ("DGRN", "MUUN"):
            for m in (20, 40):
                t.append(n_users=m, algorithm=algo,
                         decision_slots_mean=m / (2 if algo == "MUUN" else 1))
        return t

    def test_groups_by_series(self):
        doc = chart_from_table(
            self.make_table(), x="n_users", y="decision_slots_mean",
            series="algorithm",
        )
        assert doc.count("<polyline") == 2

    def test_single_series(self):
        doc = chart_from_table(
            self.make_table().filter(lambda r: r["algorithm"] == "DGRN"),
            x="n_users", y="decision_slots_mean",
        )
        assert doc.count("<polyline") == 1

    def test_empty_table(self):
        with pytest.raises(ValueError):
            chart_from_table(ResultTable(), x="a", y="b")

    def test_real_experiment_table(self):
        from repro.experiments import run_experiment

        table = run_experiment(
            "fig4", repetitions=1, seed=0, cities=("shanghai",),
            user_counts=(10, 20), algorithms=("DGRN", "MUUN"),
        )
        doc = chart_from_table(
            table, x="n_users", y="decision_slots_mean", series="algorithm",
            title="Figure 4 (Shanghai)",
        )
        assert doc.count("<polyline") == 2
